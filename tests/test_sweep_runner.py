"""Tests for the parallel, resumable sweep runner (expTools tentpole).

Covers the fault-tolerance contract: parallel and serial sweeps produce
identical row sets, resume reruns exactly the missing points, a sweep
killed mid-run leaves the CSV loadable and resumable, concurrent
writers lose no rows, and failures become ``status=error`` rows instead
of aborting the sweep.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from multiprocessing import Process

import pytest

from repro.errors import ConfigError
from repro.expt.csvdb import append_rows, read_rows, strip_provenance
from repro.expt.executors import pool_chunksize
from repro.expt.exptools import (
    IDENTITY_COLUMNS,
    completed_points,
    execute,
    point_key,
    sweep_points,
)
from repro.expt.replay import WorkProfileCache

GRID_ICVS = {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static", "dynamic"]}
GRID_OPTS = {
    "--kernel ": ["mandel"],
    "--variant ": ["omp_tiled"],
    "--size ": [64],
    "--grain ": [16],
    "--iterations ": [2],
}


def canon(row: dict) -> tuple:
    """Order-insensitive, type-insensitive row signature, modulo the
    provenance columns (which executor/worker ran the point)."""
    return tuple(sorted((k, str(v)) for k, v in strip_provenance(row).items()))


class TestParallel:
    def test_parallel_matches_serial(self, tmp_path):
        serial = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2,
                         csv_path=tmp_path / "serial.csv")
        par = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2,
                      csv_path=tmp_path / "par.csv", workers=3)
        assert len(par) == len(serial) == 8
        assert sorted(map(canon, par)) == sorted(map(canon, serial))
        # and the CSVs round-trip to the same set
        assert sorted(map(canon, read_rows(tmp_path / "par.csv"))) == sorted(
            map(canon, read_rows(tmp_path / "serial.csv"))
        )

    def test_parallel_reuse_work_matches_serial(self, tmp_path):
        serial = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2,
                         csv_path=tmp_path / "serial.csv", reuse_work=True)
        par = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2,
                      csv_path=tmp_path / "par.csv", workers=2, reuse_work=True,
                      cache_dir=tmp_path / "cache")
        assert sorted(map(canon, par)) == sorted(map(canon, serial))

    def test_bad_workers_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            execute("easypap", {}, GRID_OPTS, workers=0,
                    csv_path=tmp_path / "x.csv")

    def test_rows_carry_executor_provenance(self, tmp_path):
        serial = execute("easypap", {}, GRID_OPTS, runs=1,
                         csv_path=tmp_path / "s.csv")
        assert all(r["executor"] == "serial" for r in serial)
        assert all(r["worker_id"] for r in serial)
        par = execute("easypap", GRID_ICVS, GRID_OPTS, runs=1,
                      csv_path=tmp_path / "p.csv", workers=2)
        assert all(r["executor"] == "local-procs" for r in par)


class TestPoolChunksize:
    """Regression: the old ``len(jobs) // (workers * 4)`` heuristic must
    never batch a grid smaller than ``workers * 4`` — chunks would pile
    contiguous jobs onto the first workers and starve the rest."""

    def test_small_grids_dispatch_single_jobs(self):
        for workers in (2, 8, 32, 128):
            for n_jobs in (1, workers, workers * 4 - 1):
                assert pool_chunksize(n_jobs, workers) == 1

    def test_large_grids_keep_about_four_batches_per_worker(self):
        assert pool_chunksize(800, 4) == 50
        assert pool_chunksize(33, 8) == 1
        assert pool_chunksize(64, 2) == 8

    def test_every_worker_can_get_work(self):
        # enough chunks for every worker whenever there are enough jobs
        for workers in (2, 3, 8, 16, 64):
            for n_jobs in range(workers, 6 * workers):
                chunks = -(-n_jobs // pool_chunksize(n_jobs, workers))
                assert chunks >= workers, (n_jobs, workers)


class TestResume:
    def test_resume_skips_everything_when_complete(self, tmp_path):
        p = tmp_path / "perf.csv"
        execute("easypap", GRID_ICVS, GRID_OPTS, runs=2, csv_path=p)
        again = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2, csv_path=p,
                        resume=True)
        assert again == []
        assert len(read_rows(p)) == 8

    def test_resume_runs_exactly_the_missing_points(self, tmp_path):
        p = tmp_path / "perf.csv"
        execute("easypap", GRID_ICVS, GRID_OPTS, runs=2, csv_path=p)
        lines = p.read_text().splitlines(keepends=True)
        p.write_text("".join(lines[:-3]))  # drop the last 3 recorded points
        before = {point_key(r) for r in read_rows(p)}
        redone = execute("easypap", GRID_ICVS, GRID_OPTS, runs=2, csv_path=p,
                         resume=True)
        assert len(redone) == 3
        assert all(point_key(r) not in before for r in redone)
        rows = read_rows(p)
        assert len(rows) == 8
        assert len({point_key(r) for r in rows}) == 8

    def test_resume_extends_a_grown_sweep(self, tmp_path):
        p = tmp_path / "perf.csv"
        execute("easypap", GRID_ICVS, GRID_OPTS, runs=1, csv_path=p)
        wider = dict(GRID_ICVS, **{"OMP_NUM_THREADS=": [2, 4, 6]})
        redone = execute("easypap", wider, GRID_OPTS, runs=1, csv_path=p,
                         resume=True)
        assert {r["threads"] for r in redone} == {6}
        assert len(redone) == 2  # the new thread count x 2 schedules
        assert len(read_rows(p)) == 6

    def test_error_rows_are_retried_on_resume(self, tmp_path):
        p = tmp_path / "perf.csv"
        rows = [dict(zip(IDENTITY_COLUMNS, point))
                for point in [point_key({**c.csv_row(), "run": r})
                              for c, r in sweep_points(GRID_ICVS, GRID_OPTS, 1)]]
        for i, r in enumerate(rows):
            r["status"] = "error" if i == 0 else "ok"
        append_rows(p, rows)
        done = completed_points(p)
        assert len(done) == len(rows) - 1

    def test_legacy_csv_without_status_counts_all_rows(self, tmp_path):
        p = tmp_path / "perf.csv"
        points = sweep_points(GRID_ICVS, GRID_OPTS, 1)
        append_rows(p, [dict(c.csv_row(), run=r) for c, r in points])
        assert len(completed_points(p)) == len(points)


class TestFailures:
    def test_timeout_records_error_row_and_sweep_continues(self, tmp_path):
        p = tmp_path / "perf.csv"
        rows = execute(
            "easypap", {"OMP_NUM_THREADS=": [2]},
            {"--kernel ": ["mandel"], "--size ": [64, 512],
             "--iterations ": [1, 8]},
            csv_path=p, timeout=0.2, retries=1,
        )
        assert len(rows) == 4
        by_status = {r["status"] for r in rows}
        assert "error" in by_status and "ok" in by_status
        failed = [r for r in rows if r["status"] == "error"]
        assert all("exceeded" in r["error"] for r in failed)
        assert all(r["time_us"] == "" for r in failed)
        # the CSV stays loadable and the error rows round-trip
        stored = read_rows(p)
        assert len(stored) == 4

    def test_timeout_in_parallel_workers(self, tmp_path):
        rows = execute(
            "easypap", {"OMP_NUM_THREADS=": [2, 4]},
            {"--kernel ": ["mandel"], "--size ": [512], "--iterations ": [8]},
            csv_path=tmp_path / "perf.csv", timeout=0.1, workers=2,
        )
        assert [r["status"] for r in rows] == ["error", "error"]


def _hammer(path, tag, count):
    for i in range(count):
        append_rows(path, [{"writer": tag, "i": i, "payload": "x" * 50}])


class TestConcurrentWriters:
    def test_two_processes_lose_no_rows(self, tmp_path):
        p = tmp_path / "shared.csv"
        n = 60
        procs = [Process(target=_hammer, args=(p, tag, n)) for tag in ("a", "b")]
        for pr in procs:
            pr.start()
        for pr in procs:
            pr.join(timeout=60)
            assert pr.exitcode == 0
        rows = read_rows(p)
        assert len(rows) == 2 * n
        for tag in ("a", "b"):
            assert sorted(r["i"] for r in rows if r["writer"] == tag) == list(range(n))


KILL_ARGS = [
    "-m", "repro.expt", "-k", "mandel", "-v", "omp_tiled", "-s", "256",
    "-g", "16", "-i", "4", "--threads", "2,4", "--schedule", "static",
    "--runs", "3", "--workers", "2", "-q",
]


class TestKillResume:
    def test_sigkill_mid_sweep_then_resume(self, tmp_path):
        p = tmp_path / "perf.csv"
        env = dict(os.environ, PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        proc = subprocess.Popen(
            [sys.executable, *KILL_ARGS, "--csv", str(p)],
            env=env, start_new_session=True, cwd=os.path.dirname(os.path.dirname(__file__)),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                if p.exists() and len(p.read_text().splitlines()) >= 3:
                    break  # header + at least 2 recorded points
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            if proc.poll() is None:
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                os.killpg(proc.pid, signal.SIGKILL)

        # the database survived the kill: loadable, no duplicate points
        survivors = read_rows(p)
        assert len({point_key(r) for r in survivors}) == len(survivors)

        redone = execute(
            "easypap", {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static"]},
            {"--kernel ": ["mandel"], "--variant ": ["omp_tiled"],
             "--size ": [256], "--grain ": [16], "--iterations ": [4]},
            runs=3, csv_path=p, resume=True, workers=2,
        )
        rows = read_rows(p)
        complete = [r for r in rows if r.get("status") == "ok"]
        assert len({point_key(r) for r in complete}) == 6  # 2 threads x 3 runs
        assert len(redone) <= 6


class TestDiskCache:
    def test_profile_persists_across_instances(self, tmp_path, monkeypatch):
        from tests.conftest import make_config

        import repro.expt.replay as replay

        cfg = make_config()
        first = WorkProfileCache(cache_dir=tmp_path)
        t1 = first.simulate(cfg)
        assert list(tmp_path.glob("profile-*.pkl"))

        def boom(config):  # a second capture would be a cache miss
            raise AssertionError("profile should have come from disk")

        monkeypatch.setattr(replay, "capture_log", boom)
        t2 = WorkProfileCache(cache_dir=tmp_path).simulate(cfg)
        assert t1 == t2

    def test_corrupt_cache_entry_is_recaptured(self, tmp_path):
        from tests.conftest import make_config

        cfg = make_config()
        t1 = WorkProfileCache(cache_dir=tmp_path).simulate(cfg)
        for f in tmp_path.glob("profile-*.pkl"):
            f.write_bytes(b"not a pickle")
        t2 = WorkProfileCache(cache_dir=tmp_path).simulate(cfg)
        assert t1 == t2

    def test_memory_only_without_cache_dir(self, tmp_path, monkeypatch):
        from tests.conftest import make_config

        monkeypatch.chdir(tmp_path)
        cache = WorkProfileCache()
        cache.simulate(make_config())
        assert not list(tmp_path.rglob("profile-*.pkl"))
