"""End-to-end tests for the analysis CLI surfaces:
``easypap --check-races/--lint/--load``, ``easyview --races`` and
``python -m repro.analyze``."""

from pathlib import Path

from repro.analyze.__main__ import main as analyze_main
from repro.cli import main as easypap_main
from repro.easyview_cli import main as easyview_main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BUGGY_BLUR = str(EXAMPLES / "buggy_blur_writes_cur.py")
BUGGY_LIFE = str(EXAMPLES / "buggy_life_taskdeps.py")


class TestEasypapCheckRaces:
    def test_clean_variant_exits_zero(self, capsys):
        rc = easypap_main(
            ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16",
             "-i", "2", "--check-races"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no data races" in out

    def test_buggy_kernel_exits_one_with_report(self, capsys):
        rc = easypap_main(
            ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled",
             "-s", "64", "-ts", "16", "-i", "2", "--check-races"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "read-write race on buffer 'cur'" in out
        assert "task #" in out and "tile x=" in out

    def test_lint_flag_full_report(self, capsys):
        rc = easypap_main(
            ["--load", BUGGY_LIFE, "-k", "life_buggy", "-v", "omp_task",
             "-s", "64", "-ts", "16", "-i", "2", "--lint"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "life_buggy/omp_task" in out
        assert "missing ordering edge" in out

    def test_mpi_variant_checked_per_rank(self, capsys):
        rc = easypap_main(
            ["-k", "blur", "-v", "mpi_omp", "-s", "64", "-ts", "16",
             "-i", "2", "--mpirun", "-np 2", "--check-races"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("no data races") == 2

    def test_load_registers_kernel_for_listing(self, capsys):
        rc = easypap_main(["--load", BUGGY_BLUR, "--list-kernels"])
        assert rc == 0
        assert "blur_buggy" in capsys.readouterr().out

    def test_load_missing_file_is_error(self, capsys):
        rc = easypap_main(["--load", str(EXAMPLES / "nope.py"), "-k", "blur"])
        assert rc == 2

    def test_deterministic_reports(self, capsys):
        argv = ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled",
                "-s", "64", "-ts", "16", "-i", "2", "--check-races"]
        easypap_main(argv)
        first = capsys.readouterr().out
        easypap_main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestEasyviewRaces:
    def _record(self, tmp_path, extra_argv=()):
        trace = tmp_path / "t.evt"
        rc = easypap_main(
            [*extra_argv, "-s", "64", "-ts", "16", "-i", "2",
             "--check-races", "-t", "--trace-file", str(trace)]
        )
        return rc, trace

    def test_roundtrip_buggy_trace(self, tmp_path, capsys):
        rc, trace = self._record(
            tmp_path, ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled"]
        )
        assert rc == 1 and trace.exists()
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "race analysis:" in out
        assert "read-write race on buffer 'cur'" in out

    def test_roundtrip_clean_trace(self, tmp_path, capsys):
        rc, trace = self._record(tmp_path, ["-k", "life", "-v", "omp_tiled"])
        assert rc == 0
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no data races" in out

    def test_footprint_free_trace_noted(self, tmp_path, capsys):
        trace = tmp_path / "nofp.evt"
        easypap_main(["-k", "mandel", "-v", "omp_tiled", "-s", "64", "-ts",
                      "16", "-t", "--trace-file", str(trace)])
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no footprints" in out


class TestAnalyzeSweep:
    def test_single_kernel_sweep_clean(self, capsys):
        rc = analyze_main(["-k", "mandel", "-k", "blur"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_verbose_lists_variants(self, capsys):
        rc = analyze_main(["-k", "mandel", "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mandel/omp_tiled: ok" in out
