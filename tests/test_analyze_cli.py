"""End-to-end tests for the analysis CLI surfaces:
``easypap --check-races/--lint/--load``, ``easyview --races`` and
``python -m repro.analyze``."""

from pathlib import Path

from repro.analyze.__main__ import main as analyze_main
from repro.cli import main as easypap_main
from repro.core.kernel import load_kernel_module
from repro.easyview_cli import main as easyview_main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BUGGY_BLUR = str(EXAMPLES / "buggy_blur_writes_cur.py")
BUGGY_LIFE = str(EXAMPLES / "buggy_life_taskdeps.py")

# the structured ground truth shipped with each seeded-buggy example is
# the single source of expectations for these tests (no ad-hoc strings)
BLUR_EXPECTED = load_kernel_module(BUGGY_BLUR).EXPECTED_VERDICTS[
    ("blur_buggy", "omp_tiled")
]
LIFE_EXPECTED = load_kernel_module(BUGGY_LIFE).EXPECTED_VERDICTS[
    ("life_buggy", "omp_task")
]


class TestEasypapCheckRaces:
    def test_clean_variant_exits_zero(self, capsys):
        rc = easypap_main(
            ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16",
             "-i", "2", "--check-races"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "no data races" in out

    def test_buggy_kernel_exits_one_with_report(self, capsys):
        rc = easypap_main(
            ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled",
             "-s", "64", "-ts", "16", "-i", "2", "--check-races"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        exp = BLUR_EXPECTED
        assert f"{exp['kind']} race on buffer '{exp['buffer']}'" in out
        assert "task #" in out and "tile x=" in out

    def test_lint_flag_full_report(self, capsys):
        rc = easypap_main(
            ["--load", BUGGY_LIFE, "-k", "life_buggy", "-v", "omp_task",
             "-s", "64", "-ts", "16", "-i", "2", "--lint"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "life_buggy/omp_task" in out
        assert LIFE_EXPECTED["advice"] in out

    def test_mpi_variant_checked_per_rank(self, capsys):
        rc = easypap_main(
            ["-k", "blur", "-v", "mpi_omp", "-s", "64", "-ts", "16",
             "-i", "2", "--mpirun", "-np 2", "--check-races"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("no data races") == 2

    def test_load_registers_kernel_for_listing(self, capsys):
        rc = easypap_main(["--load", BUGGY_BLUR, "--list-kernels"])
        assert rc == 0
        assert "blur_buggy" in capsys.readouterr().out

    def test_load_missing_file_is_error(self, capsys):
        rc = easypap_main(["--load", str(EXAMPLES / "nope.py"), "-k", "blur"])
        assert rc == 2

    def test_deterministic_reports(self, capsys):
        argv = ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled",
                "-s", "64", "-ts", "16", "-i", "2", "--check-races"]
        easypap_main(argv)
        first = capsys.readouterr().out
        easypap_main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestEasyviewRaces:
    def _record(self, tmp_path, extra_argv=()):
        trace = tmp_path / "t.evt"
        rc = easypap_main(
            [*extra_argv, "-s", "64", "-ts", "16", "-i", "2",
             "--check-races", "-t", "--trace-file", str(trace)]
        )
        return rc, trace

    def test_roundtrip_buggy_trace(self, tmp_path, capsys):
        rc, trace = self._record(
            tmp_path, ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled"]
        )
        assert rc == 1 and trace.exists()
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "race analysis:" in out
        exp = BLUR_EXPECTED
        assert f"{exp['kind']} race on buffer '{exp['buffer']}'" in out

    def test_roundtrip_clean_trace(self, tmp_path, capsys):
        rc, trace = self._record(tmp_path, ["-k", "life", "-v", "omp_tiled"])
        assert rc == 0
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no data races" in out

    def test_footprint_free_trace_noted(self, tmp_path, capsys):
        trace = tmp_path / "nofp.evt"
        easypap_main(["-k", "mandel", "-v", "omp_tiled", "-s", "64", "-ts",
                      "16", "-t", "--trace-file", str(trace)])
        capsys.readouterr()
        rc = easyview_main([str(trace), "--races"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no footprints" in out


class TestStrictRaces:
    """--strict-races: a verdict from a lossy telemetry ring must not
    silently pass (the dropped events could hold the racy accesses)."""

    ARGS = ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16", "-i", "2"]

    def _lossy_run(self, monkeypatch, dropped):
        import repro.cli as cli

        real_run = cli.run

        def lossy(config, **kwargs):
            result = real_run(config, **kwargs)
            result.dropped_events = dropped
            return result

        monkeypatch.setattr(cli, "run", lossy)

    def test_implies_check_races(self, capsys):
        rc = easypap_main([*self.ARGS, "--strict-races"])
        assert rc == 0
        assert "no data races" in capsys.readouterr().out

    def test_lossy_ring_fails(self, capsys, monkeypatch):
        self._lossy_run(monkeypatch, dropped=3)
        rc = easypap_main([*self.ARGS, "--strict-races"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--strict-races" in captured.err
        assert "no data races" in captured.out  # verdict still printed

    def test_lossy_ring_only_warns_without_flag(self, capsys, monkeypatch):
        self._lossy_run(monkeypatch, dropped=3)
        rc = easypap_main([*self.ARGS, "--check-races"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "dropped by the ring buffer" in captured.err


class TestAnalyzeSweep:
    def test_single_kernel_sweep_clean(self, capsys):
        rc = analyze_main(["-k", "mandel", "-k", "blur"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_verbose_lists_variants(self, capsys):
        rc = analyze_main(["-k", "mandel", "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mandel/omp_tiled: ok" in out

    def test_unknown_kernel_is_usage_error(self, capsys):
        rc = analyze_main(["-k", "no_such_kernel"])
        assert rc == 2
        assert "no_such_kernel" in capsys.readouterr().err

    def test_expected_verdicts_flip_polarity(self, capsys):
        rc = analyze_main(["--load", BUGGY_BLUR, "-k", "blur_buggy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 seeded bug(s) confirmed" in out

    def test_missing_detection_fails_sweep(self, capsys, monkeypatch):
        # if the detector went blind, the annotated variant must FAIL
        # the sweep instead of silently passing
        import repro.analyze.__main__ as sweep_mod

        real = sweep_mod.lint_variant

        def blind(kname, vname, **kwargs):
            result = real(kname, vname, **kwargs)
            if (kname, vname) == ("blur_buggy", "omp_tiled"):
                result.findings = [f for f in result.findings
                                   if f.level != "error"]
            return result

        monkeypatch.setattr(sweep_mod, "lint_variant", blind)
        rc = analyze_main(["--load", BUGGY_BLUR, "-k", "blur_buggy"])
        assert rc == 1
        assert "found none" in capsys.readouterr().out
