"""Tests for easyplot: auto legend, facets, speedups (paper Fig. 6)."""

import pytest

from repro.errors import PlotError
from repro.expt.easyplot import build_plot


def rows_fixture():
    rows = []
    for sched in ("static", "dynamic"):
        for grain in (16, 32):
            for threads in (2, 4):
                for rep in range(2):
                    base = 1000.0 if sched == "dynamic" else 1500.0
                    rows.append({
                        "machine": "virtual",
                        "kernel": "mandel",
                        "variant": "omp_tiled",
                        "dim": 64,
                        "tile_w": grain,
                        "iterations": 10,
                        "schedule": sched,
                        "threads": threads,
                        "run": rep,
                        "time_us": base / threads + rep,  # tiny run-to-run noise
                    })
    return rows


class TestLegend:
    def test_constant_columns_go_to_title(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        assert spec.const_params["kernel"] == "mandel"
        assert spec.const_params["dim"] == 64
        assert "schedule" not in spec.const_params

    def test_legend_from_varying_columns_only(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        labels = {s.label for s in spec.facets[0].series}
        assert labels == {"schedule=static", "schedule=dynamic"}

    def test_different_conditions_never_merge(self):
        """The paper's point: a second machine's rows become a separate
        plotline instead of polluting the existing one."""
        rows = rows_fixture()
        rows.append({**rows[0], "machine": "other"})
        spec = build_plot(rows, x="threads", col="tile_w")
        labels = {s.label for s in spec.facets[0].series}
        assert any("machine=" in lbl for lbl in labels)

    def test_header_lists_constants(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        assert "kernel=mandel" in spec.header()
        assert "dim=64" in spec.header()


class TestFacetsAndAggregation:
    def test_one_facet_per_col_value(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        assert [f.title for f in spec.facets] == ["tile_w = 16", "tile_w = 32"]

    def test_no_col_single_facet(self):
        spec = build_plot(rows_fixture(), x="threads")
        assert len(spec.facets) == 1 and spec.facets[0].title == ""

    def test_mean_over_runs(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        dyn = next(s for s in spec.facets[0].series if s.label == "schedule=dynamic")
        assert dyn.point(2) == pytest.approx(500.5)  # mean of 500 and 501

    def test_yerr_from_run_noise(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w")
        s = spec.facets[0].series[0]
        assert all(e == pytest.approx(0.5) for e in s.yerr)

    def test_filters(self):
        spec = build_plot(rows_fixture(), x="threads", schedule="dynamic")
        assert spec.const_params["schedule"] == "dynamic"

    def test_no_matching_rows(self):
        with pytest.raises(PlotError):
            build_plot(rows_fixture(), kernel="nope")

    def test_missing_column(self):
        with pytest.raises(PlotError):
            build_plot(rows_fixture(), y="watts")


class TestSpeedup:
    def test_explicit_ref_time(self):
        spec = build_plot(rows_fixture(), x="threads", col="tile_w",
                          speedup=True, ref_time_us=1000.0)
        dyn = next(s for s in spec.facets[0].series if s.label == "schedule=dynamic")
        assert dyn.point(4) == pytest.approx(1000.0 / 250.5, rel=1e-3)
        assert spec.ylabel == "speedup"
        assert "refTime=1000" in spec.header()

    def test_auto_ref_from_seq_rows(self):
        rows = rows_fixture()
        rows.append({"machine": "virtual", "kernel": "mandel", "variant": "seq",
                     "dim": 64, "tile_w": 16, "iterations": 10,
                     "schedule": "dynamic", "threads": 1, "run": 0,
                     "time_us": 2000.0})
        spec = build_plot(rows, x="threads", col="tile_w", speedup=True,
                          variant="omp_tiled")
        assert spec.ref_time_us == pytest.approx(2000.0)

    def test_speedup_without_any_reference_raises(self):
        with pytest.raises(PlotError):
            build_plot(rows_fixture(), x="threads", speedup=True)
