"""Tests for connected components — with networkx as the oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.core.engine import run
from repro.kernels.connected import (
    _seg_cummax_inplace,
    draw_shapes,
    draw_snake,
    pass_down_right,
    pass_up_left,
)
from tests.conftest import make_config


def components_oracle(img: np.ndarray) -> list[set]:
    """4-connected components of the foreground, via networkx."""
    g = nx.Graph()
    fg = np.argwhere(img != 0)
    for y, x in fg:
        g.add_node((y, x))
        if y > 0 and img[y - 1, x] != 0:
            g.add_edge((y, x), (y - 1, x))
        if x > 0 and img[y, x - 1] != 0:
            g.add_edge((y, x), (y, x - 1))
    return list(nx.connected_components(g))


class TestSegCummax:
    def test_plain_running_max(self):
        a = np.array([3, 1, 2, 5, 4], dtype=np.uint32)
        changed = _seg_cummax_inplace(a)
        assert changed
        assert a.tolist() == [3, 3, 3, 5, 5]

    def test_zeros_reset_segments(self):
        a = np.array([5, 0, 1, 2, 0, 9, 1], dtype=np.uint32)
        _seg_cummax_inplace(a)
        assert a.tolist() == [5, 0, 1, 2, 0, 9, 9]

    def test_no_change_reported_when_already_increasing(self):
        a = np.array([1, 2, 3], dtype=np.uint32)
        assert not _seg_cummax_inplace(a)
        assert a.tolist() == [1, 2, 3]
        b = np.array([3, 2, 1], dtype=np.uint32)
        assert _seg_cummax_inplace(b)
        assert b.tolist() == [3, 3, 3]

    def test_all_background(self):
        a = np.zeros(4, dtype=np.uint32)
        assert not _seg_cummax_inplace(a)


class TestPasses:
    def test_down_right_propagates_max(self):
        img = np.array(
            [[1, 1, 0],
             [0, 9, 0],
             [0, 1, 1]], dtype=np.uint32)
        pass_down_right(img, 0, 0, 3, 3)
        # 9 flows right and down along fg
        assert img[1, 1] == 9
        assert img[2, 1] == 9 and img[2, 2] == 9

    def test_up_left_propagates_max(self):
        img = np.array(
            [[1, 1, 0],
             [0, 9, 0],
             [0, 1, 1]], dtype=np.uint32)
        pass_up_left(img, 0, 0, 3, 3)
        assert img[0, 1] == 9 and img[0, 0] == 9

    def test_background_blocks_propagation(self):
        img = np.array([[5, 0, 1]], dtype=np.uint32)
        pass_down_right(img, 0, 0, 3, 1)
        assert img[0, 2] == 1

    def test_tiled_pass_equals_whole_pass(self):
        rng = np.random.default_rng(8)
        img = (rng.random((16, 16)) < 0.6).astype(np.uint32) * rng.integers(
            1, 1000, (16, 16)
        ).astype(np.uint32)
        whole = img.copy()
        pass_down_right(whole, 0, 0, 16, 16)
        tiled = img.copy()
        for ty in range(0, 16, 4):
            for tx in range(0, 16, 4):
                pass_down_right(tiled, tx, ty, 4, 4)
        assert np.array_equal(whole, tiled)

    def test_tiled_upleft_equals_whole(self):
        rng = np.random.default_rng(9)
        img = (rng.random((16, 16)) < 0.6).astype(np.uint32) * rng.integers(
            1, 1000, (16, 16)
        ).astype(np.uint32)
        whole = img.copy()
        pass_up_left(whole, 0, 0, 16, 16)
        tiled = img.copy()
        for ty in range(12, -1, -4):
            for tx in range(12, -1, -4):
                pass_up_left(tiled, tx, ty, 4, 4)
        assert np.array_equal(whole, tiled)


class TestDatasets:
    def test_shapes_deterministic(self):
        assert np.array_equal(draw_shapes(64, 1), draw_shapes(64, 1))

    def test_snake_single_component(self):
        img = draw_snake(32)
        comps = components_oracle(img)
        assert len(comps) == 1

    def test_shapes_have_background(self):
        img = draw_shapes(64, 2)
        assert (img == 0).any() and (img != 0).any()


class TestKernelCorrectness:
    @pytest.mark.parametrize("variant", ["seq", "tiled", "omp_task"])
    @pytest.mark.parametrize("dataset", ["shapes", "snake"])
    def test_labels_match_oracle(self, variant, dataset):
        r = run(make_config(kernel="cc", variant=variant, dim=48, tile_w=16,
                            tile_h=16, iterations=64, arg=dataset, seed=4,
                            nthreads=4))
        assert r.early_stop > 0, "did not converge"
        img = r.image
        comps = components_oracle(img)
        labels_of = [set(int(img[y, x]) for (y, x) in comp) for comp in comps]
        # every component uniformly labelled
        assert all(len(s) == 1 for s in labels_of)
        # distinct components have distinct labels
        flat = [next(iter(s)) for s in labels_of]
        assert len(set(flat)) == len(flat)
        # each label is the component's maximum initial label -> labels
        # are positive
        assert all(v > 0 for v in flat)

    def test_variants_agree_exactly(self):
        cfg = dict(kernel="cc", dim=48, tile_w=16, tile_h=16, iterations=64,
                   seed=4, nthreads=4)
        seq = run(make_config(variant="seq", **cfg))
        tiled = run(make_config(variant="tiled", **cfg))
        task = run(make_config(variant="omp_task", **cfg))
        assert np.array_equal(seq.image, tiled.image)
        assert np.array_equal(seq.image, task.image)
        # crucially (paper §III-C): the tiled versions need NO extra iterations
        assert seq.early_stop == tiled.early_stop == task.early_stop

    def test_snake_needs_many_iterations(self):
        r = run(make_config(kernel="cc", variant="seq", dim=32, tile_w=16,
                            tile_h=16, iterations=64, arg="snake"))
        assert r.early_stop > 2  # information crawls along the snake

    def test_task_wave_structure(self):
        """Fig. 12: the down-right phase forms an anti-diagonal wave."""
        r = run(make_config(kernel="cc", variant="omp_task", dim=64, tile_w=16,
                            tile_h=16, iterations=8, nthreads=16, trace=True,
                            seed=4))
        events = [e for e in r.trace.events if e.kind == "task_dr"
                  and e.iteration == 1]
        start_of = {}
        for e in events:
            start_of[(e.y // 16, e.x // 16)] = e.start
        for (r_, c), s in start_of.items():
            for (r2, c2), s2 in start_of.items():
                if r2 + c2 > r_ + c:
                    # later anti-diagonals cannot start before this one
                    assert s2 >= start_of[(r_, c)] or (r2 + c2) == (r_ + c)
