"""Tests for the MPI wait-for-graph deadlock detector."""

import pytest

from repro.analyze.deadlock import ANY, PendingMsg, RankWait, diagnose
from repro.errors import DeadlockError, MpiError
from repro.mpi.comm import ANY_SOURCE, run_world


def world_run(size, fn, timeout=10.0):
    return run_world(size, fn, recv_timeout=timeout)


class TestDetectorInWorld:
    def test_two_rank_recv_cycle_reported_as_cycle(self):
        """recv/recv head-to-head: diagnosed as a cycle naming both
        ranks, long before the hard timeout would fire."""

        def main(comm, rank):
            comm.recv(source=1 - rank)

        with pytest.raises(MpiError, match=r"cyclic wait among ranks") as exc:
            world_run(2, main, timeout=30.0)
        msg = str(exc.value)
        assert "deadlock detected" in msg
        assert "rank 0 blocked in recv(source=1" in msg
        assert "rank 1 blocked in recv(source=0" in msg

    def test_three_rank_cycle(self):
        def main(comm, rank):
            comm.recv(source=(rank + 1) % comm.size)

        with pytest.raises(MpiError, match=r"cyclic wait among ranks"):
            world_run(3, main, timeout=30.0)

    def test_wait_on_finished_rank(self):
        def main(comm, rank):
            if rank == 0:
                comm.recv(source=1)  # rank 1 terminates without sending

        with pytest.raises(MpiError, match=r"rank 1 has already finished"):
            world_run(2, main, timeout=30.0)

    def test_unmatched_message_is_reported(self):
        """A send with the wrong tag shows up as a near-miss in the
        report instead of vanishing silently."""

        def main(comm, rank):
            if rank == 1:
                comm.send("payload", dest=0, tag=5)
            else:
                comm.recv(source=1, tag=7)

        with pytest.raises(MpiError, match=r"from rank 1 with tag 5"):
            world_run(2, main, timeout=30.0)

    def test_any_source_starved(self):
        def main(comm, rank):
            if rank == 0:
                comm.recv(source=ANY_SOURCE)

        with pytest.raises(MpiError, match=r"every other rank is blocked or finished"):
            world_run(2, main, timeout=30.0)

    def test_deadlock_error_type_and_report(self):
        def main(comm, rank):
            comm.recv(source=1 - rank)

        with pytest.raises(MpiError) as exc:
            world_run(2, main, timeout=30.0)
        cause = exc.value.__cause__
        assert isinstance(cause, DeadlockError)
        assert cause.report.kind == "cycle"
        assert set(cause.report.cycle) == {0, 1}

    def test_matched_sendrecv_stays_clean(self):
        """The symmetric exchange must not be flagged: sends are
        buffered, so sendrecv/sendrecv always completes."""

        def main(comm, rank):
            peer = 1 - rank
            out = []
            for i in range(20):
                out.append(comm.sendrecv((rank, i), dest=peer, source=peer))
            return out

        results = world_run(2, main, timeout=10.0)
        assert results[0] == [(1, i) for i in range(20)]
        assert results[1] == [(0, i) for i in range(20)]

    def test_late_sender_not_flagged(self):
        """A slow-but-alive sender must not be misdiagnosed: rank 1 is
        computing (not blocked), so no verdict may be produced."""
        import time

        def main(comm, rank):
            if rank == 0:
                return comm.recv(source=1)
            time.sleep(0.4)  # several poll intervals of apparent silence
            comm.send("late", dest=0)

        results = world_run(2, main, timeout=10.0)
        assert results[0] == "late"


class TestDiagnoseFunction:
    def test_no_verdict_when_chain_hits_active_rank(self):
        waits = {0: RankWait(0, 1, ANY)}  # rank 1 not blocked
        assert diagnose(0, waits, frozenset(), 2) is None

    def test_cycle_through_self_only(self):
        # 1 <-> 2 cycle exists, but rank 0 waits on it without being in it
        waits = {
            0: RankWait(0, 1, ANY),
            1: RankWait(1, 2, ANY),
            2: RankWait(2, 1, ANY),
        }
        report = diagnose(1, waits, frozenset(), 3)
        assert report is not None and report.kind == "cycle"
        assert diagnose(0, waits, frozenset(), 3) is None  # not in the cycle

    def test_self_receive(self):
        waits = {0: RankWait(0, 0, 3)}
        report = diagnose(0, waits, frozenset(), 2)
        assert report is not None and report.cycle == (0, 0)

    def test_any_source_needs_all_peers_stuck(self):
        waits = {0: RankWait(0, ANY, ANY), 1: RankWait(1, 0, ANY)}
        assert diagnose(0, waits, frozenset(), 3) is None  # rank 2 active
        report = diagnose(0, waits, frozenset({2}), 3)
        assert report is not None and report.kind == "starved"

    def test_finished_peer_reports_unmatched(self):
        waits = {0: RankWait(0, 1, 7)}
        report = diagnose(
            0, waits, frozenset({1}), 2, unmatched=(PendingMsg(1, 5),)
        )
        assert report is not None and report.kind == "finished-peer"
        assert "with tag 5" in report.describe()

    def test_single_rank_any_source_never_starved(self):
        waits = {0: RankWait(0, ANY, ANY)}
        assert diagnose(0, waits, frozenset(), 1) is None
