"""Core tests for ``repro.staticcheck``: symbolic algebra, verdicts
over every built-in kernel, the seeded-buggy positives, and the
soundness contract (``unknown`` is never silently ``clean``)."""

from pathlib import Path

import pytest

from repro.core.kernel import get_kernel, list_kernels, load_kernel_module
from repro.staticcheck import check_kernels, check_variant
from repro.staticcheck.races import dep_cone
from repro.staticcheck.sym import (
    TOP,
    SymRect,
    add,
    always_ge,
    always_gt,
    const,
    is_top,
    relation,
    sub,
    sym,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BUGGY_BLUR = str(EXAMPLES / "buggy_blur_writes_cur.py")
BUGGY_LIFE = str(EXAMPLES / "buggy_life_taskdeps.py")


class TestSymbolicAlgebra:
    def test_affine_arithmetic_and_render(self):
        e = add(sym("TX"), add(sym("TW"), const(1)))
        assert str(e) == "TW+TX+1"
        assert str(sub(e, sym("TW"))) == "TX+1"

    def test_subst(self):
        e = add(sym("TX"), sym("TW"))
        shifted = e.subst({"TX": add(sym("TX"), sym("TW"))})
        # TX -> TX+TW gives TX+2*TW
        assert shifted.value({"TX": 3, "TW": 5}) == 13

    def test_top_is_absorbing(self):
        assert is_top(add(TOP, sym("TX")))
        assert is_top(sub(const(1), TOP))

    def test_box_bounds(self):
        # TX, TY, TR, TC >= 0 and TW, TH, DIM >= 1
        assert always_ge(sym("TX"), const(0))
        assert always_gt(add(sym("TX"), sym("TW")), sym("TX"))
        assert not always_ge(sym("TX"), const(1))
        # negative coefficients have no provable lower bound
        assert not always_ge(sub(sym("DIM"), sym("TX")), const(0))

    def test_relation_disjoint_overlap_unknown(self):
        tile = SymRect(buf="cur", x0=sym("TX"), y0=sym("TY"),
                       x1=add(sym("TX"), sym("TW")),
                       y1=add(sym("TY"), sym("TH")))
        right = tile.subst({"TX": add(sym("TX"), sym("TW"))})
        halo = SymRect(buf="cur", x0=sub(sym("TX"), const(1)),
                       y0=sub(sym("TY"), const(1)),
                       x1=add(add(sym("TX"), sym("TW")), const(1)),
                       y1=add(add(sym("TY"), sym("TH")), const(1)))
        assert relation(tile, right) == "disjoint"
        assert relation(halo, right) == "overlap"
        assert relation(tile, tile.subst({"TX": TOP})) == "unknown"
        # different buffers never conflict
        other = SymRect(buf="next", x0=tile.x0, y0=tile.y0,
                        x1=tile.x1, y1=tile.y1)
        assert relation(tile, other) == "disjoint"


class TestBuiltinVerdicts:
    @pytest.fixture(scope="class")
    def report(self):
        # other test modules register extra kernels (the seeded-buggy
        # examples, ad-hoc fixtures) in the same process: restrict to
        # the kernels shipped in repro.kernels
        kernels = [
            k for k in (get_kernel(name) for name in list_kernels())
            if type(k).__module__.startswith("repro.")
        ]
        assert len(kernels) >= 12
        return check_kernels(kernels)

    def test_no_builtin_races(self, report):
        racy = [r.name for r in report.reports if r.verdict == "race"]
        assert racy == [], f"false positives on shipped kernels: {racy}"

    def test_most_builtins_are_clean(self, report):
        clean = {r.name for r in report.reports if r.verdict == "clean"}
        for name in ("blur/omp_tiled", "life/omp_tiled", "mandel/omp_tiled",
                     "heat/omp_tiled", "cc/omp_task", "transpose/omp_tiled",
                     "scrollup/omp_tiled", "sandpile/omp_tiled"):
            assert name in clean

    def test_ocl_variants_are_unknown_not_clean(self, report):
        # the device launch is outside the model: soundness demands
        # ``unknown``, never a blind ``clean``
        for name in ("blur", "mandel"):
            vr = report.find(name, "ocl")
            assert vr.verdict == "unknown"
            assert any("device.launch" in u for u in vr.unknowns)

    def test_counters(self, report):
        assert report.counters["staticcheck_variants"] == len(report.reports)
        assert report.counters["staticcheck_races"] == 0
        assert report.counters["staticcheck_ms"] > 0

    def test_blur_halo_footprint(self, report):
        vr = report.find("blur", "omp_tiled")
        lines = "\n".join(vr.footprint_lines())
        assert "cur[x=TX-1..TW+TX+1, y=TY-1..TH+TY+1]" in lines
        assert "next[x=TX..TW+TX, y=TY..TH+TY]" in lines

    def test_heat_shared_accumulator_warning_but_clean(self, report):
        vr = report.find("heat", "mpi_2d")
        assert vr.verdict == "clean"
        warn = [f for f in vr.findings if f.check == "shared-accumulator"]
        assert warn and "max_delta" in warn[0].message


class TestSeededBugs:
    def test_blur_race_matches_annotation(self):
        module = load_kernel_module(BUGGY_BLUR)
        exp = module.EXPECTED_VERDICTS[("blur_buggy", "omp_tiled")]
        vr = check_variant(get_kernel("blur_buggy"), "omp_tiled")
        assert vr.verdict == "race"
        race = vr.races[0]
        assert race.kind == exp["kind"]
        assert race.buf == exp["buffer"]
        assert race.construct == exp["construct"]
        assert set(exp["lines"]) <= {ln for r in vr.races for ln in r.lines}
        assert any(exp["advice"] in r.advice for r in vr.races)

    def test_life_dag_race_matches_annotation(self):
        module = load_kernel_module(BUGGY_LIFE)
        exp = module.EXPECTED_VERDICTS[("life_buggy", "omp_task")]
        vr = check_variant(get_kernel("life_buggy"), "omp_task")
        assert vr.verdict == "race"
        race = vr.races[0]
        assert race.kind == exp["kind"]
        assert race.buf == exp["buffer"]
        assert race.construct == "dag"
        assert set(exp["lines"]) <= {ln for r in vr.races for ln in r.lines}
        # the advice names a concrete missing dependence
        assert any(exp["advice"] in r.advice for r in vr.races)

    def test_inherited_variants_stay_clean(self):
        load_kernel_module(BUGGY_BLUR)
        kernel = get_kernel("blur_buggy")
        for vname in ("seq", "tiled", "omp_tiled_opt"):
            assert check_variant(kernel, vname).verdict == "clean"

    def test_no_kernel_execution(self, monkeypatch):
        # the analyzer must never run a kernel: poison the engine
        import repro.core.engine as engine

        def boom(*args, **kwargs):
            raise AssertionError("staticcheck executed a kernel")

        monkeypatch.setattr(engine, "run", boom)
        load_kernel_module(BUGGY_BLUR)
        vr = check_variant(get_kernel("blur_buggy"), "omp_tiled")
        assert vr.verdict == "race"


class TestDepCone:
    def test_cone_closure_sums_chains(self):
        cone = dep_cone([(0, -1)], radius=3)
        assert (0, -1) in cone and (0, -2) in cone and (0, -3) in cone
        assert (0, 0) not in cone
        assert (-1, 0) not in cone

    def test_cc_task_deps_cover(self):
        vr = check_variant(get_kernel("cc"), "omp_task")
        assert vr.verdict == "clean"
