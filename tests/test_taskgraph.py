"""Tests for TaskGraph: OpenMP-style dependency inference + DAG queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DependencyError
from repro.sched.taskgraph import TaskGraph


class TestExplicitEdges:
    def test_chain(self):
        g = TaskGraph()
        a = g.add_task("a")
        b = g.add_task("b", depends_on=[a])
        c = g.add_task("c", depends_on=[b])
        assert g.topological_order() == [a, b, c]
        assert g.depth() == 3

    def test_unknown_pred_rejected(self):
        g = TaskGraph()
        with pytest.raises(DependencyError):
            g.add_task("a", depends_on=[5])

    def test_self_dependency_rejected(self):
        g = TaskGraph()
        a = g.add_task("a")
        with pytest.raises(DependencyError):
            g._add_edge(a, a)

    def test_roots(self):
        g = TaskGraph()
        a = g.add_task("a")
        b = g.add_task("b")
        g.add_task("c", depends_on=[a, b])
        assert g.roots() == [a, b]


class TestOmpDependInference:
    def test_reader_depends_on_writer(self):
        g = TaskGraph()
        w = g.add_task("w", writes=["x"])
        r = g.add_task("r", reads=["x"])
        assert w in g.nodes[r].preds

    def test_writer_depends_on_readers_since(self):
        g = TaskGraph()
        w1 = g.add_task("w1", writes=["x"])
        r1 = g.add_task("r1", reads=["x"])
        r2 = g.add_task("r2", reads=["x"])
        w2 = g.add_task("w2", writes=["x"])
        assert {r1, r2, w1} <= g.nodes[w2].preds

    def test_two_readers_independent(self):
        g = TaskGraph()
        g.add_task("w", writes=["x"])
        r1 = g.add_task("r1", reads=["x"])
        r2 = g.add_task("r2", reads=["x"])
        assert r1 not in g.nodes[r2].preds
        assert r2 not in g.nodes[r1].preds

    def test_read_of_never_written_token_is_noop(self):
        # OpenMP: depend(in:) on an address no task wrote creates no edge —
        # the out-of-grid tile[i-1][j] case of paper Fig. 11
        g = TaskGraph()
        t = g.add_task("t", reads=[("off", "grid")])
        assert g.nodes[t].preds == set()

    def test_inout_chain(self):
        g = TaskGraph()
        a = g.add_task("a", reads=["x"], writes=["x"])
        b = g.add_task("b", reads=["x"], writes=["x"])
        assert a in g.nodes[b].preds

    def test_wavefront_grid(self):
        """The Fig. 11 pattern: task (i, j) reads (i-1, j) and (i, j-1)."""
        g = TaskGraph()
        n = 4
        tid = {}
        for i in range(n):
            for j in range(n):
                tid[i, j] = g.add_task(
                    (i, j),
                    reads=[(i - 1, j), (i, j - 1)],
                    writes=[(i, j)],
                )
        levels = g.levels()
        for (i, j), t in tid.items():
            assert levels[t] == i + j + 1  # anti-diagonal wavefront
        assert g.depth() == 2 * n - 1


class TestQueries:
    def test_critical_path_time(self):
        g = TaskGraph()
        a = g.add_task("a", cost=2.0)
        b = g.add_task("b", cost=3.0, depends_on=[a])
        g.add_task("c", cost=1.0, depends_on=[a])
        assert g.critical_path_time() == pytest.approx(5.0)

    def test_cycle_detected(self):
        g = TaskGraph()
        a = g.add_task("a")
        b = g.add_task("b", depends_on=[a])
        # force a back edge
        g.nodes[a].preds.add(b)
        g.nodes[b].succs.add(a)
        with pytest.raises(DependencyError):
            g.topological_order()

    def test_validate_symmetry(self):
        g = TaskGraph()
        a = g.add_task("a")
        b = g.add_task("b", depends_on=[a])
        g.validate()
        g.nodes[b].preds.add(99 % 2)  # no-op: already there
        g.nodes[a].succs.discard(b)
        with pytest.raises(DependencyError):
            g.validate()

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.topological_order() == []
        assert g.depth() == 0
        assert g.critical_path_time() == 0.0


@settings(max_examples=50, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] < e[1]),
        max_size=40,
    )
)
def test_topological_order_property(edges):
    """Property: forward-only random DAGs topo-sort consistently."""
    g = TaskGraph()
    n = 15
    for i in range(n):
        g.add_task(i)
    for a, b in edges:
        g._add_edge(a, b)
    order = g.topological_order()
    pos = {t: i for i, t in enumerate(order)}
    assert sorted(order) == list(range(n))
    for a, b in edges:
        assert pos[a] < pos[b]
