"""Tests for ICV resolution (OMP_NUM_THREADS / OMP_SCHEDULE)."""

import pytest

from repro.errors import ConfigError
from repro.omp.icv import DEFAULT_NUM_THREADS, resolve_icvs
from repro.sched.policies import DynamicSchedule, GuidedSchedule, StaticSchedule


class TestResolve:
    def test_defaults_with_empty_env(self):
        icvs = resolve_icvs({})
        assert icvs.num_threads == DEFAULT_NUM_THREADS
        assert isinstance(icvs.schedule, DynamicSchedule)

    def test_env_values(self):
        icvs = resolve_icvs({"OMP_NUM_THREADS": "7", "OMP_SCHEDULE": "guided,2"})
        assert icvs.num_threads == 7
        assert isinstance(icvs.schedule, GuidedSchedule)
        assert icvs.schedule.chunk == 2

    def test_explicit_args_override_env(self):
        icvs = resolve_icvs(
            {"OMP_NUM_THREADS": "7", "OMP_SCHEDULE": "guided"},
            num_threads=3,
            schedule="static",
        )
        assert icvs.num_threads == 3
        assert isinstance(icvs.schedule, StaticSchedule)

    def test_policy_object_accepted(self):
        icvs = resolve_icvs({}, schedule=StaticSchedule(4))
        assert icvs.schedule.chunk == 4

    def test_bad_thread_count(self):
        with pytest.raises(ConfigError):
            resolve_icvs({"OMP_NUM_THREADS": "zero"})
        with pytest.raises(ConfigError):
            resolve_icvs({}, num_threads=0)

    def test_spec_roundtrip(self):
        icvs = resolve_icvs({}, num_threads=6, schedule="dynamic,2")
        spec = icvs.spec()
        again = resolve_icvs(spec)
        assert again.num_threads == 6
        assert again.schedule.spec() == "dynamic,2"

    def test_process_environment_used_when_env_none(self, monkeypatch):
        monkeypatch.setenv("OMP_NUM_THREADS", "9")
        monkeypatch.setenv("OMP_SCHEDULE", "static,2")
        icvs = resolve_icvs(None)
        assert icvs.num_threads == 9
        assert icvs.schedule.spec() == "static,2"

    def test_default_schedule_param(self):
        icvs = resolve_icvs({}, default_schedule="guided")
        assert isinstance(icvs.schedule, GuidedSchedule)
