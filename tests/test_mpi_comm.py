"""Tests for the message-passing substrate."""

import time

import numpy as np
import pytest

from repro.errors import MpiError
from repro.mpi.comm import (
    ANY_SOURCE,
    ANY_TAG,
    MpiWorld,
    default_recv_timeout,
    run_world,
)


def world_run(size, fn, timeout=10.0):
    return run_world(size, fn, recv_timeout=timeout)


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm, rank):
            if rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = world_run(2, main)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_numpy_payload_is_copied(self):
        def main(comm, rank):
            if rank == 0:
                data = np.arange(10)
                comm.send(data, dest=1)
                data[:] = -1  # mutation must not reach the receiver
                return None
            got = comm.recv(source=0)
            return got.tolist()

        results = world_run(2, main)
        assert results[1] == list(range(10))

    def test_tag_matching_out_of_order(self):
        def main(comm, rank):
            if rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results = world_run(2, main)
        assert results[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def main(comm, rank):
            if rank == 0:
                got = {comm.recv(ANY_SOURCE, ANY_TAG) for _ in range(2)}
                return got
            comm.send(f"from-{rank}", dest=0, tag=rank)
            return None

        results = world_run(3, main)
        assert results[0] == {"from-1", "from-2"}

    def test_sendrecv_symmetric_exchange(self):
        def main(comm, rank):
            peer = 1 - rank
            return comm.sendrecv(f"hello-{rank}", dest=peer, source=peer)

        results = world_run(2, main)
        assert results == ["hello-1", "hello-0"]

    def test_bad_destination(self):
        def main(comm, rank):
            comm.send("x", dest=5)

        with pytest.raises(MpiError):
            world_run(2, main)

    def test_recv_timeout_is_deadlock_diagnosis(self):
        def main(comm, rank):
            if rank == 0:
                comm.recv(source=1)  # never sent

        with pytest.raises(MpiError, match="deadlock|failed"):
            world_run(2, main, timeout=0.2)


class TestCollectives:
    def test_bcast(self):
        def main(comm, rank):
            data = {"key": [1, 2, 3]} if rank == 0 else None
            return comm.bcast(data, root=0)

        results = world_run(4, main)
        assert all(r == {"key": [1, 2, 3]} for r in results)

    def test_scatter_gather_roundtrip(self):
        def main(comm, rank):
            data = [i * i for i in range(comm.size)] if rank == 0 else None
            mine = comm.scatter(data, root=0)
            assert mine == rank * rank
            return comm.gather(mine * 10, root=0)

        results = world_run(4, main)
        assert results[0] == [0, 10, 40, 90]
        assert results[1] is None

    def test_scatter_wrong_length(self):
        def main(comm, rank):
            data = [1, 2] if rank == 0 else None
            comm.scatter(data, root=0)

        with pytest.raises(MpiError):
            world_run(3, main)

    def test_allgather(self):
        def main(comm, rank):
            return comm.allgather(rank + 1)

        results = world_run(3, main)
        assert all(r == [1, 2, 3] for r in results)

    def test_reduce_and_allreduce(self):
        import operator

        def main(comm, rank):
            s = comm.reduce(rank + 1, op=operator.add, root=0)
            a = comm.allreduce(rank + 1, op=operator.add)
            return (s, a)

        results = world_run(4, main)
        assert results[0] == (10, 10)
        assert results[1][0] is None and results[1][1] == 10

    def test_barrier_orders_phases(self):
        import threading

        order = []
        lock = threading.Lock()

        def main(comm, rank):
            with lock:
                order.append(("pre", rank))
            comm.barrier()
            with lock:
                order.append(("post", rank))

        world_run(3, main)
        pre = [i for i, (p, _) in enumerate(order) if p == "pre"]
        post = [i for i, (p, _) in enumerate(order) if p == "post"]
        assert max(pre) < min(post)

    def test_nonuniform_roots(self):
        def main(comm, rank):
            return comm.bcast(f"from-2" if rank == 2 else None, root=2)

        results = world_run(3, main)
        assert all(r == "from-2" for r in results)

    def test_collectives_interleaved_with_pt2pt(self):
        def main(comm, rank):
            if rank == 0:
                comm.send("noise", dest=1, tag=0)
            total = comm.allreduce(1, op=lambda a, b: a + b)
            if rank == 1:
                assert comm.recv(source=0, tag=0) == "noise"
            return total

        results = world_run(2, main)
        assert results == [2, 2]


class TestWorld:
    def test_rank_errors_aggregated(self):
        def main(comm, rank):
            if rank == 1:
                raise ValueError("kaboom")
            # other ranks may block on a collective; keep them terminating
            return rank

        with pytest.raises(MpiError, match="rank 1.*kaboom"):
            world_run(3, main)

    def test_stats_counted(self):
        world = MpiWorld(2)

        def main(rank):
            comm = world.comm(rank)
            if rank == 0:
                comm.send([1, 2, 3], dest=1)
            else:
                comm.recv(source=0)

        import threading

        ts = [threading.Thread(target=main, args=(r,)) for r in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert world.stats[0].messages_sent == 1
        assert world.stats[0].bytes_sent > 0
        assert world.stats[1].messages_received == 1

    def test_bad_world_size(self):
        with pytest.raises(MpiError):
            MpiWorld(0)

    def test_comm_bad_rank(self):
        with pytest.raises(MpiError):
            MpiWorld(2).comm(2)


class TestRecvTimeoutConfig:
    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MPI_RECV_TIMEOUT", "7.5")
        assert default_recv_timeout() == 7.5
        assert MpiWorld(2).recv_timeout == 7.5

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MPI_RECV_TIMEOUT", "soon")
        with pytest.raises(MpiError, match="REPRO_MPI_RECV_TIMEOUT"):
            default_recv_timeout()

    def test_unset_env_gives_60s(self, monkeypatch):
        monkeypatch.delenv("REPRO_MPI_RECV_TIMEOUT", raising=False)
        assert default_recv_timeout() == 60.0

    def test_expiry_raises_deadlock_error_with_pending_state(self):
        def fn(comm, rank):
            if rank == 0:
                comm.send("mismatched", dest=1, tag=9)
                time.sleep(1.0)  # stay active: starve the analyzer
                return "done"
            return comm.recv(source=0, tag=5)

        with pytest.raises(MpiError) as ei:
            run_world(2, fn, recv_timeout=0.2)
        msg = str(ei.value)
        assert "timed out" in msg
        assert "pending mailbox" in msg
        assert "(source=0, tag=9)" in msg
