"""The real-process MPI substrate: lanes, collectives, abort, windows.

Process-world test functions must live at module level (rank processes
receive them by pickled reference).  The collective-correctness matrix
runs every collective on both substrates and demands bit-identical
results — the process world is an implementation change, not a
semantics change.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.engine import run
from repro.errors import ExecutionError, MpiError
from repro.mpi.comm import run_world
from repro.mpi.substrate import (
    get_mpi_pool,
    live_mpi_blocks,
    run_world_procs,
    shutdown_mpi_pools,
)

from .conftest import make_config


@pytest.fixture(autouse=True, scope="module")
def _shutdown_pools_at_end():
    yield
    shutdown_mpi_pools()
    assert live_mpi_blocks() == []


# --------------------------------------------------------------------------
# rank programs (module-level: picklable by reference)
# --------------------------------------------------------------------------


def _prog_pt2pt(comm, rank):
    if rank == 0:
        for dst in range(1, comm.size):
            comm.send({"to": dst, "data": np.arange(dst + 3)}, dst, tag=7)
        return "sent"
    got = comm.recv(source=0, tag=7)
    return (got["to"], got["data"].tolist())


def _prog_sendrecv_ring(comm, rank):
    right = (rank + 1) % comm.size
    left = (rank - 1) % comm.size
    got = comm.sendrecv(rank * 10, dest=right, source=left)
    return got


def _prog_bcast(comm, rank):
    obj = {"payload": np.arange(16).reshape(4, 4)} if rank == 1 else None
    got = comm.bcast(obj, root=1)
    return got["payload"].sum()


def _prog_scatter(comm, rank):
    objs = [f"item-{i}" for i in range(comm.size)] if rank == 0 else None
    return comm.scatter(objs, root=0)


def _prog_gather(comm, rank):
    out = comm.gather(rank * rank, root=0)
    return out if rank == 0 else "nonroot"


def _prog_allgather(comm, rank):
    return comm.allgather(chr(ord("a") + rank))


def _prog_reduce(comm, rank):
    return comm.reduce(rank + 1, op=lambda a, b: a * b, root=0)


def _prog_allreduce(comm, rank):
    return comm.allreduce(rank, op=lambda a, b: a + b)


def _prog_barrier(comm, rank):
    comm.barrier()
    comm.barrier()
    return comm.stats.collectives


def _prog_nonblocking(comm, rank):
    if rank == 0:
        reqs = [comm.isend(i * 2, dest=1, tag=i) for i in range(3)]
        return [r.wait() for r in reqs]
    req = comm.irecv(source=0, tag=1)
    done, val = req.test()
    while not done:
        done, val = req.test()
        time.sleep(0.001)
    rest = [comm.recv(source=0, tag=t) for t in (0, 2)]
    return [val] + rest


def _prog_stats(comm, rank):
    if rank == 0:
        comm.send(b"x" * 100, dest=1)
    elif rank == 1:
        comm.recv(source=0)
    comm.barrier()
    st = comm.stats
    return (st.messages_sent, st.bytes_sent, st.messages_received, st.collectives)


def _prog_window(comm, rank):
    win = comm.shared_window(
        np.arange(64, dtype=np.int64).reshape(8, 8) if rank == 0 else None,
        root=0,
    )
    if rank == 0:
        win[0, 0] = 999  # mutate *after* sharing: peers must observe it
    comm.barrier()
    writable = win.flags.writeable
    return (int(win[0, 0]), int(win[-1, -1]), writable,
            comm.stats.messages_sent, comm.stats.bytes_sent)


def _prog_big_messages(comm, rank):
    """Messages far larger than a lane: chunked writes + drain-on-full."""
    peer = 1 - rank
    data = np.full(200_000, rank, dtype=np.uint8)
    got = comm.sendrecv(data, dest=peer)
    return (int(got[0]), got.nbytes)


def _prog_cycle(comm, rank):
    return comm.recv(source=(rank + 1) % comm.size)


def _prog_finished_peer(comm, rank):
    if rank == 1:
        return "done"
    return comm.recv(source=1, tag=5)


def _prog_late_send(comm, rank):
    if rank == 1:
        time.sleep(1.0)
        comm.send("late", dest=0, tag=3)
        return "sent"
    return comm.recv(source=1, tag=3)


def _prog_raise(comm, rank):
    if rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.recv(source=1)  # must unwind via the abort word, not timeout


def _prog_sleep_or_recv(comm, rank):
    if rank == 0:
        time.sleep(30)
        return "slept"
    return comm.recv(source=0)


# --------------------------------------------------------------------------
# collective-correctness matrix: procs must equal inproc bit-for-bit
# --------------------------------------------------------------------------

_MATRIX = [
    _prog_pt2pt,
    _prog_sendrecv_ring,
    _prog_bcast,
    _prog_scatter,
    _prog_gather,
    _prog_allgather,
    _prog_reduce,
    _prog_allreduce,
    _prog_barrier,
    _prog_stats,
    _prog_window,
]


@pytest.mark.parametrize("prog", _MATRIX, ids=lambda p: p.__name__[6:])
def test_collective_matrix_np2(prog):
    inproc = run_world(2, prog)
    procs = run_world_procs(2, prog)
    assert procs == inproc


@pytest.mark.slow
@pytest.mark.parametrize("prog", _MATRIX, ids=lambda p: p.__name__[6:])
def test_collective_matrix_np3(prog):
    inproc = run_world(3, prog)
    procs = run_world_procs(3, prog)
    assert procs == inproc


def test_nonblocking_matches_inproc():
    assert run_world_procs(2, _prog_nonblocking) == run_world(2, _prog_nonblocking)


def test_big_messages_chunk_through_small_lanes(monkeypatch):
    shutdown_mpi_pools()  # force a fresh pool so the tiny cap applies
    monkeypatch.setenv("REPRO_MPI_LANE_CAP", "4096")
    try:
        out = run_world_procs(2, _prog_big_messages)
    finally:
        shutdown_mpi_pools()
    assert out == [(1, 200_000), (0, 200_000)]


def test_pool_is_persistent_across_worlds():
    pool = get_mpi_pool(2)
    pids = pool.worker_pids()
    run_world_procs(2, _prog_barrier)
    run_world_procs(2, _prog_allreduce)
    assert get_mpi_pool(2).worker_pids() == pids


# --------------------------------------------------------------------------
# deadlock analysis against the process substrate
# --------------------------------------------------------------------------


def test_cycle_is_diagnosed():
    with pytest.raises(MpiError, match="cyclic wait|DeadlockError"):
        run_world_procs(2, _prog_cycle, recv_timeout=20.0)


def test_finished_peer_is_diagnosed():
    with pytest.raises(MpiError, match="already finished|DeadlockError"):
        run_world_procs(2, _prog_finished_peer, recv_timeout=20.0)


def test_late_sender_is_not_a_deadlock():
    out = run_world_procs(2, _prog_late_send, recv_timeout=30.0)
    assert out == ["late", "sent"]


def test_recv_timeout_reports_deadlock():
    t0 = time.monotonic()
    with pytest.raises(MpiError, match="timed out.*deadlock"):
        # rank 1 computes (active, undiagnosable) past rank 0's backstop
        run_world_procs(2, _prog_late_send, recv_timeout=0.3)
    assert time.monotonic() - t0 < 10.0


# --------------------------------------------------------------------------
# abort semantics: one dying rank takes the world down, boundedly
# --------------------------------------------------------------------------


def test_raising_rank_aborts_world_quickly():
    t0 = time.monotonic()
    with pytest.raises(MpiError, match="rank 1: ValueError"):
        run_world_procs(2, _prog_raise, recv_timeout=60.0)
    # the blocked peer must unwind via the abort word, not the 60s backstop
    assert time.monotonic() - t0 < 10.0


@pytest.mark.slow
def test_sigkilled_rank_bounded_abort_no_leaks():
    pool = get_mpi_pool(2)
    victim = pool.worker_pids()[0]
    box: dict = {}

    def _world():
        try:
            run_world_procs(2, _prog_sleep_or_recv, recv_timeout=60.0)
            box["result"] = "completed"
        except BaseException as exc:  # noqa: BLE001 - inspected below
            box["exc"] = exc

    t = threading.Thread(target=_world)
    t.start()
    time.sleep(0.5)  # let the world block: rank 0 sleeps, rank 1 recvs
    os.kill(victim, signal.SIGKILL)
    t.join(timeout=20.0)
    assert not t.is_alive(), "world did not unwind after SIGKILL"
    assert isinstance(box.get("exc"), ExecutionError)
    assert "died" in str(box["exc"])
    # the failed pool was torn down: none of its /dev/shm segments remain
    # (other, healthy persistent pools may legitimately still be live)
    assert not [b for b in live_mpi_blocks() if b.startswith(pool.prefix)]
    # and the next world transparently respawns the pool
    assert run_world_procs(2, _prog_allreduce) == [1, 1]


# --------------------------------------------------------------------------
# kernels end-to-end on the process substrate
# --------------------------------------------------------------------------


def test_life_procs_equals_seq_and_inproc():
    cfg = make_config(kernel="life", variant="mpi_omp", dim=64, iterations=4,
                      arg="diag", mpi_np=2, mpi_backend="procs")
    procs = run(cfg)
    inproc = run(cfg.with_(mpi_backend="inproc"))
    seq = run(make_config(kernel="life", variant="seq", dim=64, iterations=4,
                          arg="diag"))
    assert np.array_equal(procs.image, seq.image)
    assert np.array_equal(procs.image, inproc.image)
    # deterministic engine inside each rank: virtual clocks agree too
    assert procs.virtual_time == inproc.virtual_time


def test_rank_results_carry_context_snapshots():
    cfg = make_config(kernel="life", variant="mpi_omp", dim=64, iterations=2,
                      arg="diag", mpi_np=2, mpi_backend="procs")
    res = run(cfg)
    assert len(res.rank_results) == 2
    for rank, rr in enumerate(res.rank_results):
        assert rr.context is not None
        assert rr.context.mpi.rank == rank
        assert rr.context.mpi.size == 2
        assert rr.context.mpi.comm.stats.messages_sent > 0
        assert "cells" in rr.context.data


def test_comm_counters_in_run_result():
    cfg = make_config(kernel="life", variant="mpi_omp", dim=64, iterations=2,
                      arg="diag", mpi_np=2, mpi_backend="procs")
    res = run(cfg)
    for rr in res.rank_results:
        st = rr.context.mpi.comm.stats
        assert rr.counters["mpi_msgs_sent"] == st.messages_sent
        assert rr.counters["mpi_bytes_sent"] == st.bytes_sent
        assert rr.counters["mpi_msgs_recv"] == st.messages_received
        assert rr.counters["mpi_collectives"] == st.collectives
    # world totals on the master result come from the drained ring lanes,
    # reconciled against the authoritative per-rank stats
    assert res.counters["mpi_msgs_sent_world"] == sum(
        rr.context.mpi.comm.stats.messages_sent for rr in res.rank_results
    )
    assert res.counters["mpi_bytes_sent_world"] == sum(
        rr.context.mpi.comm.stats.bytes_sent for rr in res.rank_results
    )


def test_counters_identical_across_substrates():
    cfg = make_config(kernel="life", variant="mpi_omp", dim=64, iterations=3,
                      arg="diag", mpi_np=2)
    inproc = run(cfg.with_(mpi_backend="inproc"))
    procs = run(cfg.with_(mpi_backend="procs"))

    def pick(r):
        return {k: v for k, v in r.counters.items() if k.startswith("mpi_")}

    assert pick(procs) == pick(inproc)


@pytest.mark.slow
def test_heat_mpi_2d_on_procs():
    cfg = make_config(kernel="heat", variant="mpi_2d", dim=64, iterations=3,
                      mpi_np=4, mpi_backend="procs")
    procs = run(cfg)
    inproc = run(cfg.with_(mpi_backend="inproc"))
    assert np.array_equal(procs.image, inproc.image)
