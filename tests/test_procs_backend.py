"""Tests for ``backend="procs"``: the persistent shared-memory worker pool.

Covers the ISSUE-4 acceptance matrix: bit-identical images across
``sim`` / ``threads`` / ``procs`` for every kernel x variant x schedule,
identical per-tile visit multisets (via traces), pool reuse across runs,
a SIGKILL'd worker surfacing a clean :class:`ExecutionError` within a
bounded time, and zero leaked ``/dev/shm`` segments after interrupted
runs.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import BACKENDS, RunConfig
from repro.core.context import ExecutionContext
from repro.core.engine import run
from repro.core.kernel import get_kernel, load_kernel_module
from repro.errors import ConfigError, ExecutionError
from repro.omp import procs as procs_mod
from repro.sched.policies import NonMonotonicDynamic
from tests.conftest import make_config

FIXTURES = Path(__file__).parent / "fixtures"

NW = 2  # one pool of this size is shared by (almost) every test below


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools_at_end():
    yield
    procs_mod.shutdown_pools()


def run_backend(backend: str, **kw):
    kw.setdefault("nthreads", NW)
    return run(make_config(backend=backend, **kw))


# --------------------------------------------------------------------------
# Backend equivalence: images, early-stop, reduce results
# --------------------------------------------------------------------------

# Compact default-tier matrix: each row exercises a distinct procs code
# path (tile grid, pickled row items, lazy todo lists, parallel_reduce,
# scalar write-back, work-stealing deques).
CASES = [
    ("mandel", "omp_tiled", "dynamic,2"),
    ("mandel", "omp", "static"),  # row items travel pickled, not as tile indices
    ("life", "omp_tiled", "guided"),
    ("heat", "omp_tiled", "static,2"),  # parallel_reduce path
    ("sandpile", "omp_tiled", "dynamic"),  # scalar (flag) write-back
    ("invert", "omp_tiled", "nonmonotonic:dynamic,2"),  # steal mode
]


@pytest.mark.parametrize("kernel,variant,schedule", CASES)
def test_procs_matches_sim(kernel, variant, schedule):
    res = {
        b: run_backend(b, kernel=kernel, variant=variant, schedule=schedule)
        for b in ("sim", "procs")
    }
    assert np.array_equal(res["sim"].image, res["procs"].image)
    assert res["sim"].early_stop == res["procs"].early_stop
    assert res["sim"].completed_iterations == res["procs"].completed_iterations


FULL_KERNELS = [
    ("mandel", "omp_tiled"),
    ("life", "omp_tiled"),
    ("life", "lazy"),
    ("blur", "omp_tiled"),
    ("blur", "omp_tiled_opt"),
    ("heat", "omp_tiled"),
    ("sandpile", "omp_tiled"),
    ("spin", "omp_tiled"),
    ("scrollup", "omp_tiled"),
    ("transpose", "omp_tiled"),
    ("pixelize", "omp_tiled"),
    ("none", "omp_tiled"),
]
FULL_SCHEDULES = ["static,2", "dynamic,2", "guided"]


@pytest.mark.slow
@pytest.mark.parametrize("kernel,variant", FULL_KERNELS)
@pytest.mark.parametrize("schedule", FULL_SCHEDULES)
def test_backend_equivalence_full(kernel, variant, schedule):
    kw = dict(kernel=kernel, variant=variant, schedule=schedule, dim=32, tile_w=8, tile_h=8)
    res = {b: run_backend(b, **kw) for b in ("sim", "threads", "procs")}
    for b in ("threads", "procs"):
        assert np.array_equal(res["sim"].image, res[b].image), b
        assert res["sim"].early_stop == res[b].early_stop, b


def test_steal_half_policy_object():
    """``steal_half`` has no spec spelling — pass the policy object."""
    images = {}
    for backend in ("sim", "procs"):
        cfg = make_config(
            kernel="invert", backend=backend, nthreads=NW, dim=32, tile_w=8, tile_h=8
        )
        kern = get_kernel("invert")
        ctx = ExecutionContext(cfg)
        try:
            kern.init(ctx)
            kern.draw(ctx)
            res = ctx.parallel_for(
                ctx.body(kern.do_tile),
                schedule=NonMonotonicDynamic(2, steal_half=True),
            )
            assert len(res.timeline) == len(ctx.grid)
            images[backend] = ctx.img.copy_cur()
        finally:
            ctx.close()
    assert np.array_equal(images["sim"], images["procs"])


# --------------------------------------------------------------------------
# Traces: per-tile visit multisets and wall-clock timestamps
# --------------------------------------------------------------------------


def _tile_multiset(trace):
    return sorted(
        (e.iteration, e.x, e.y, e.w, e.h) for e in trace if e.kind == "tile"
    )


def test_visit_multisets_match_sim():
    res = {
        b: run_backend(b, kernel="mandel", schedule="dynamic,2", trace=True)
        for b in ("sim", "procs")
    }
    assert _tile_multiset(res["procs"].trace) == _tile_multiset(res["sim"].trace)


def test_procs_trace_is_wall_clock():
    res = run_backend("procs", kernel="mandel", trace=True)
    assert res.trace.meta.extra == {"clock": "wall", "backend": "procs"}
    events = [e for e in res.trace if e.kind == "tile"]
    assert len(events) == 16 * 2  # 16 tiles x 2 iterations
    assert {e.cpu for e in events} <= set(range(NW))
    for e in events:
        assert 0.0 <= e.start <= e.end
    # wall-clock events from one region overlap across cpus instead of
    # being serialized -- iteration 1 must finish in real (sub-second
    # scale) time, not the virtual-cost scale the simulator would report
    it1 = [e for e in events if e.iteration == 1]
    assert max(e.end for e in it1) < 60.0


def test_sim_trace_meta_untouched():
    # golden .evt fixtures compare byte-for-byte: the wall-clock
    # annotation must never leak into simulator traces
    res = run_backend("sim", kernel="mandel", trace=True)
    assert res.trace.meta.extra == {}


# --------------------------------------------------------------------------
# Pool lifecycle: reuse, worker death, respawn
# --------------------------------------------------------------------------


def test_pool_persists_across_runs():
    run_backend("procs", kernel="invert")
    pool = procs_mod.get_pool(NW)
    pids = pool.worker_pids()
    run_backend("procs", kernel="mandel")
    assert procs_mod.get_pool(NW) is pool
    assert pool.worker_pids() == pids
    assert pool.healthy()


def test_sigkill_mid_region_raises_clean_execution_error():
    load_kernel_module(str(FIXTURES / "slowtiles_kernel.py"))
    # warm the pool so the victim pid is known before the region starts
    run_backend("procs", kernel="invert", iterations=1)
    pool = procs_mod.get_pool(NW)
    old_pids = pool.worker_pids()
    victim = old_pids[0]

    killer = threading.Timer(0.5, os.kill, (victim, signal.SIGKILL))
    killer.start()
    cfg = RunConfig(
        kernel="slowtiles",
        variant="omp_tiled",
        dim=32,
        tile_w=8,
        tile_h=8,
        iterations=1,
        nthreads=NW,
        schedule="dynamic",
        backend="procs",
        seed=42,
    )
    t0 = time.monotonic()
    try:
        with pytest.raises(ExecutionError, match="died"):
            run(cfg)
    finally:
        killer.cancel()
    assert time.monotonic() - t0 < 30.0  # bounded: no hang on the dead pipe

    # the broken pool was torn down; the next run gets a fresh one
    res = run_backend("procs", kernel="invert", iterations=1)
    assert res.completed_iterations == 1
    assert procs_mod.get_pool(NW).worker_pids() != old_pids


def test_pool_respawned_after_worker_death_between_runs():
    run_backend("procs", kernel="invert", iterations=1)
    pool = procs_mod.get_pool(NW)
    os.kill(pool.worker_pids()[-1], signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while pool.healthy() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not pool.healthy()
    res = run_backend("procs", kernel="invert", iterations=1)
    assert res.completed_iterations == 1
    assert procs_mod.get_pool(NW).healthy()


# --------------------------------------------------------------------------
# Shared-memory lifecycle
# --------------------------------------------------------------------------


def _my_arena_segments():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    prefix = f"ezpap_arena_{os.getpid()}_"
    return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]


def test_cancelled_run_leaks_no_shared_memory():
    def cancel(ctx, iteration):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run(make_config(backend="procs", nthreads=NW, iterations=5), frame_hook=cancel)
    assert procs_mod.live_arena_blocks() == []
    assert _my_arena_segments() == []


def test_completed_run_releases_arena_but_image_stays_readable():
    res = run_backend("procs", kernel="invert")
    assert procs_mod.live_arena_blocks() == []
    assert _my_arena_segments() == []
    # handed-out views survive the unlink (mapping dies with the views)
    assert res.image.sum() == res.context.img.copy_cur().sum()
    assert int(res.context.img.cur[0, 0]) == int(res.image[0, 0])


def test_context_close_is_idempotent():
    ctx = ExecutionContext(make_config(backend="procs", nthreads=NW))
    ctx.close()
    ctx.close()
    assert procs_mod.live_arena_blocks() == []


# --------------------------------------------------------------------------
# Input validation
# --------------------------------------------------------------------------


def test_closure_body_rejected_with_helpful_message():
    ctx = ExecutionContext(make_config(backend="procs", nthreads=NW))
    try:
        with pytest.raises(ExecutionError, match=r"ctx\.body"):
            ctx.parallel_for(lambda t: 1.0)
    finally:
        ctx.close()


def test_body_requires_registered_kernel_method():
    ctx = ExecutionContext(make_config(backend="procs", nthreads=NW))
    try:
        with pytest.raises(ExecutionError, match="bound method"):
            ctx.body(print)
    finally:
        ctx.close()


def test_unknown_backend_error_enumerates_backends():
    with pytest.raises(ConfigError) as exc:
        make_config(backend="cuda")
    for name in BACKENDS:
        assert name in str(exc.value)


def test_procs_refuses_mpi():
    with pytest.raises(ConfigError, match="mpirun"):
        make_config(backend="procs", mpi_np=2)


def test_procs_accepts_footprints():
    """Worker footprints flow back over the telemetry ring (the PR-4
    rejection is lifted): trace events carry non-empty reads/writes."""
    res = run_backend(
        "procs", kernel="blur", variant="omp_tiled",
        trace=True, footprints=True, iterations=1,
    )
    tiles = [e for e in res.trace if e.kind == "tile"]
    assert tiles and all(e.writes for e in tiles)
    assert res.dropped_events == 0
    # same footprints as the sim backend records for the same config
    ref = run_backend(
        "sim", kernel="blur", variant="omp_tiled",
        trace=True, footprints=True, iterations=1,
    )

    def fp_multiset(trace):
        return sorted(
            (e.x, e.y, tuple(sorted(e.reads)), tuple(sorted(e.writes)))
            for e in trace
            if e.kind == "tile"
        )

    assert fp_multiset(res.trace) == fp_multiset(ref.trace)
