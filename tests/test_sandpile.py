"""Tests for the Abelian sandpile kernel."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.kernels.sandpile import sandpile_step_rect
from tests.conftest import make_config


def step_full(grains):
    nxt = np.zeros_like(grains)
    sandpile_step_rect(grains, nxt, 0, 0, *grains.shape)
    return nxt


class TestStep:
    def test_stable_grid_unchanged(self):
        g = np.full((6, 6), 3, dtype=np.int64)
        assert np.array_equal(step_full(g), g)

    def test_single_topple(self):
        g = np.zeros((3, 3), dtype=np.int64)
        g[1, 1] = 4
        nxt = step_full(g)
        assert nxt[1, 1] == 0
        assert nxt[0, 1] == nxt[2, 1] == nxt[1, 0] == nxt[1, 2] == 1

    def test_grains_lost_at_border(self):
        g = np.zeros((3, 3), dtype=np.int64)
        g[0, 0] = 4
        nxt = step_full(g)
        # two grains fall off the two outside edges
        assert nxt.sum() == 2

    def test_grain_conservation_interior(self):
        rng = np.random.default_rng(2)
        g = rng.integers(0, 4, (8, 8)).astype(np.int64)  # all stable
        g[4, 4] = 7
        nxt = step_full(g)
        assert nxt.sum() == g.sum()  # interior topple conserves grains

    def test_tiled_equals_full(self):
        rng = np.random.default_rng(3)
        g = rng.integers(0, 8, (12, 12)).astype(np.int64)
        full = step_full(g)
        tiled = np.zeros_like(g)
        for y in range(0, 12, 4):
            for x in range(0, 12, 4):
                sandpile_step_rect(g, tiled, y, x, 4, 4)
        assert np.array_equal(full, tiled)

    def test_changed_count(self):
        g = np.zeros((3, 3), dtype=np.int64)
        g[1, 1] = 4
        nxt = np.zeros_like(g)
        changed = sandpile_step_rect(g, nxt, 0, 0, 3, 3)
        assert changed == 5


class TestKernel:
    def test_uniform5_stabilizes(self):
        r = run(make_config(kernel="sandpile", variant="seq", dim=16,
                            tile_w=8, tile_h=8, iterations=500))
        assert r.early_stop > 0
        grains = r.context.data["grains"]
        assert (grains[1:-1, 1:-1] <= 3).all()

    def test_variants_agree(self):
        cfg = dict(kernel="sandpile", dim=16, tile_w=8, tile_h=8, iterations=60)
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="omp_tiled", nthreads=4, **cfg))
        assert np.array_equal(a.image, b.image)
        assert a.early_stop == b.early_stop

    def test_center_dataset(self):
        r = run(make_config(kernel="sandpile", variant="omp_tiled", dim=16,
                            tile_w=8, tile_h=8, iterations=10, arg="center"))
        assert r.completed_iterations == 10  # still toppling
        assert r.image.any()

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            run(make_config(kernel="sandpile", variant="seq", arg="nope"))

    def test_abelian_final_state_is_symmetric(self):
        """uniform5 with symmetric boundary: the stable state inherits the
        grid's 4-fold symmetry."""
        r = run(make_config(kernel="sandpile", variant="seq", dim=17,
                            tile_w=8, tile_h=8, iterations=1000))
        g = r.context.data["grains"]
        assert np.array_equal(g, g[::-1, :])
        assert np.array_equal(g, g[:, ::-1])
        assert np.array_equal(g, g.T)
