"""Tests for repro.core.image (double-buffered images, pixel packing)."""

import numpy as np
import pytest

from repro.core.image import (
    Img2D,
    alpha_of,
    blue_of,
    green_of,
    red_of,
    rgb,
    rgba,
)
from repro.errors import ConfigError


class TestPacking:
    def test_rgba_packs_channels_in_order(self):
        assert rgba(0x12, 0x34, 0x56, 0x78) == 0x12345678

    def test_rgb_is_opaque(self):
        assert rgb(1, 2, 3) & 0xFF == 0xFF

    def test_channel_extractors_roundtrip(self):
        p = rgba(200, 100, 50, 25)
        assert red_of(p) == 200
        assert green_of(p) == 100
        assert blue_of(p) == 50
        assert alpha_of(p) == 25

    def test_channels_are_masked_to_bytes(self):
        assert rgba(0x1FF, 0, 0, 0) == rgba(0xFF, 0, 0, 0)


class TestImg2D:
    def test_dimensions_and_dtype(self):
        img = Img2D(16)
        assert img.cur.shape == (16, 16)
        assert img.cur.dtype == np.uint32
        assert img.nxt.shape == (16, 16)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ConfigError):
            Img2D(0)
        with pytest.raises(ConfigError):
            Img2D(-3)

    def test_fill_value(self):
        img = Img2D(8, fill=rgb(9, 9, 9))
        assert int(img.cur[0, 0]) == rgb(9, 9, 9)

    def test_scalar_accessors(self):
        img = Img2D(8)
        img.set_cur(2, 3, 0xDEADBEEF)
        assert img.cur_img(2, 3) == 0xDEADBEEF
        img.set_next(4, 5, 0x01020304)
        assert img.next_img(4, 5) == 0x01020304

    def test_swap_exchanges_buffers(self):
        img = Img2D(4)
        img.set_cur(0, 0, 111)
        img.set_next(0, 0, 222)
        img.swap()
        assert img.cur_img(0, 0) == 222
        assert img.next_img(0, 0) == 111
        assert img.swaps == 1

    def test_swap_is_o1_no_copy(self):
        img = Img2D(4)
        cur_before = img.cur
        img.swap()
        assert img.nxt is cur_before

    def test_views_are_writable(self):
        img = Img2D(8)
        v = img.cur_view(2, 2, 3, 3)
        v[:] = 7
        assert img.cur_img(3, 3) == 7
        assert img.cur_img(0, 0) == 0

    def test_view_bounds_checked(self):
        img = Img2D(8)
        with pytest.raises(ConfigError):
            img.cur_view(6, 6, 4, 4)
        with pytest.raises(ConfigError):
            img.next_view(-1, 0, 2, 2)

    def test_load_shape_checked(self):
        img = Img2D(8)
        with pytest.raises(ConfigError):
            img.load(np.zeros((4, 4)))

    def test_load_and_copy(self):
        img = Img2D(4)
        data = np.arange(16, dtype=np.uint32).reshape(4, 4)
        img.load(data)
        snap = img.copy_cur()
        assert np.array_equal(snap, data)
        img.set_cur(0, 0, 999)
        assert snap[0, 0] == 0  # snapshot is independent

    def test_channels_split(self):
        img = Img2D(2, fill=rgba(10, 20, 30, 40))
        r, g, b, a = img.channels()
        assert r[0, 0] == 10 and g[0, 0] == 20 and b[0, 0] == 30 and a[0, 0] == 40
