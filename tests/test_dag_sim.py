"""Tests for DAG list scheduling (the omp-task runtime model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sched.costmodel import CostModel
from repro.sched.dag_sim import simulate_dag
from repro.sched.taskgraph import TaskGraph

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def wavefront_graph(n: int, cost: float = 1.0) -> tuple[TaskGraph, dict]:
    g = TaskGraph()
    tid = {}
    for i in range(n):
        for j in range(n):
            tid[i, j] = g.add_task(
                (i, j), cost=cost, reads=[(i - 1, j), (i, j - 1)], writes=[(i, j)]
            )
    return g, tid


class TestBasics:
    def test_empty_graph(self):
        tl = simulate_dag(TaskGraph(), 4, model=ZERO)
        assert len(tl) == 0

    def test_chain_is_sequential(self):
        g = TaskGraph()
        a = g.add_task("a", cost=1.0)
        b = g.add_task("b", cost=2.0, depends_on=[a])
        c = g.add_task("c", cost=3.0, depends_on=[b])
        tl = simulate_dag(g, 4, model=ZERO)
        assert tl.makespan == pytest.approx(6.0)

    def test_independent_tasks_run_in_parallel(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(i, cost=1.0)
        tl = simulate_dag(g, 4, model=ZERO)
        assert tl.makespan == pytest.approx(1.0)

    def test_bad_ncpus(self):
        with pytest.raises(SimulationError):
            simulate_dag(TaskGraph(), 0)

    def test_meta_merged(self):
        g = TaskGraph()
        g.add_task("a", cost=1.0, meta={"phase": "dr"})
        tl = simulate_dag(g, 1, model=ZERO, meta={"iteration": 3})
        e = tl.execs[0]
        assert e.meta["iteration"] == 3 and e.meta["phase"] == "dr"


class TestDependencyRespect:
    def test_preds_finish_first(self):
        g, tid = wavefront_graph(4)
        tl = simulate_dag(g, 3, model=ZERO)
        end = {e.meta["tid"]: e.end for e in tl}
        start = {e.meta["tid"]: e.start for e in tl}
        for node in g.nodes:
            for p in node.preds:
                assert end[p] <= start[node.tid] + 1e-9

    def test_wavefront_makespan(self):
        # n x n unit-cost wavefront on enough cpus: critical path = 2n-1
        g, _ = wavefront_graph(5)
        tl = simulate_dag(g, 16, model=ZERO)
        assert tl.makespan == pytest.approx(9.0)

    def test_single_cpu_is_total_work(self):
        g, _ = wavefront_graph(3)
        tl = simulate_dag(g, 1, model=ZERO)
        assert tl.makespan == pytest.approx(9.0)

    def test_overconstrained_graph_serializes(self):
        """The classic student bug (paper §III-C): depending on the
        previous task in submission order makes execution sequential —
        visible as makespan == total work even with many CPUs."""
        g = TaskGraph()
        prev = None
        for i in range(9):
            prev = g.add_task(i, cost=1.0, depends_on=[] if prev is None else [prev])
        tl = simulate_dag(g, 8, model=ZERO)
        assert tl.makespan == pytest.approx(9.0)

    def test_wave_order_visible_in_timeline(self):
        g, tid = wavefront_graph(4)
        tl = simulate_dag(g, 4, model=ZERO)
        start = {e.meta["tid"]: e.start for e in tl}
        # tasks on a later anti-diagonal never start before all tasks of
        # the 2-earlier diagonal have started (the Fig. 12 wave)
        for (i, j), t in tid.items():
            for (k, l), u in tid.items():
                if k + l >= i + j + 2:
                    assert start[u] >= start[t] - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5),
    ncpus=st.integers(min_value=1, max_value=8),
    costs_seed=st.integers(min_value=0, max_value=1000),
)
def test_dag_sim_invariants(n, ncpus, costs_seed):
    """Property: validity + dependency respect + greedy bound on wavefronts."""
    import random

    rnd = random.Random(costs_seed)
    g = TaskGraph()
    for i in range(n):
        for j in range(n):
            g.add_task((i, j), cost=rnd.uniform(0.1, 2.0),
                       reads=[(i - 1, j), (i, j - 1)], writes=[(i, j)])
    tl = simulate_dag(g, ncpus, model=ZERO)
    tl.validate()
    assert len(tl) == n * n
    end = {e.meta["tid"]: e.end for e in tl}
    start = {e.meta["tid"]: e.start for e in tl}
    for node in g.nodes:
        for p in node.preds:
            assert end[p] <= start[node.tid] + 1e-9
    total = sum(node.cost for node in g.nodes)
    cp = g.critical_path_time()
    # Graham bound for greedy list scheduling
    assert tl.makespan <= total / ncpus + cp + 1e-9
    assert tl.makespan >= max(cp, total / ncpus) - 1e-9
