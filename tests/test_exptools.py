"""Tests for expTools sweeps (paper Fig. 5 workflow)."""

import pytest

from repro.errors import ConfigError
from repro.expt.csvdb import read_rows
from repro.expt.exptools import execute, sweep_configs


class TestSweepConfigs:
    def test_cartesian_product(self):
        configs = sweep_configs(
            {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static", "dynamic"]},
            {"--kernel ": ["mandel"], "--size ": [64], "--grain ": [16, 32]},
        )
        assert len(configs) == 2 * 2 * 2
        threads = {c.nthreads for c, _ in configs}
        scheds = {c.schedule for c, _ in configs}
        grains = {c.tile_w for c, _ in configs}
        assert threads == {2, 4} and grains == {16, 32}
        assert scheds == {"static", "dynamic"}

    def test_paper_style_keys_with_trailing_space(self):
        configs = sweep_configs(
            {"OMP_NUM_THREADS=": [3]},
            {"--kernel ": ["blur"], "--variant ": ["omp_tiled"], "--iterations ": [2]},
        )
        (cfg, env), = configs
        assert cfg.kernel == "blur" and cfg.variant == "omp_tiled"
        assert cfg.iterations == 2 and cfg.nthreads == 3
        assert env == {"OMP_NUM_THREADS": "3"}

    def test_empty_specs_yield_default_config(self):
        configs = sweep_configs({}, {})
        assert len(configs) == 1

    def test_option_typo_raises_config_error_not_system_exit(self):
        """argparse must not SystemExit the interpreter mid-sweep."""
        with pytest.raises(ConfigError, match="--grian"):
            sweep_configs({}, {"--grian ": [16]})

    def test_bad_value_raises_config_error(self):
        with pytest.raises(ConfigError):
            sweep_configs({}, {"--size ": ["not-a-number"]})


class TestExecute:
    def _sweep(self, tmp_path, **kw):
        return execute(
            "easypap",
            {"OMP_NUM_THREADS=": [2, 4]},
            {
                "--kernel ": ["mandel"],
                "--variant ": ["omp_tiled"],
                "--size ": [64],
                "--grain ": [16],
                "--iterations ": [2],
            },
            runs=2,
            csv_path=tmp_path / "perf.csv",
            **kw,
        )

    def test_row_count_and_columns(self, tmp_path):
        rows = self._sweep(tmp_path)
        assert len(rows) == 4  # 2 thread counts x 2 runs
        for row in rows:
            assert row["kernel"] == "mandel"
            assert row["time_us"] > 0
            assert row["run"] in (0, 1)
            assert row["machine"] == "virtual"

    def test_csv_written(self, tmp_path):
        self._sweep(tmp_path)
        rows = read_rows(tmp_path / "perf.csv")
        assert len(rows) == 4

    def test_telemetry_counter_columns(self, tmp_path):
        """Sweep rows carry the bus counters (steals, dropped_events)."""
        rows = self._sweep(tmp_path)
        for row in rows:
            assert row["steals"] >= 0
            assert row["dropped_events"] == 0  # in-process channel never drops
        stealing = execute(
            "easypap",
            {"OMP_NUM_THREADS=": [4]},
            {
                "--kernel ": ["mandel"],
                "--variant ": ["omp_tiled"],
                "--size ": [64],
                "--grain ": [16],
                "--iterations ": [2],
                "--schedule ": ["nonmonotonic:dynamic,1"],
                # the fastpath skips the event-driven simulation (no
                # steals to count); force the reference path
                "--no-fastpath": [""],
            },
            runs=1,
            csv_path=tmp_path / "steals.csv",
        )
        assert any(r["steals"] > 0 for r in stealing)

    def test_replay_matches_full_runs(self, tmp_path):
        """reuse_work=True must give exactly the same virtual times."""
        full = self._sweep(tmp_path)
        fast = execute(
            "easypap",
            {"OMP_NUM_THREADS=": [2, 4]},
            {
                "--kernel ": ["mandel"],
                "--variant ": ["omp_tiled"],
                "--size ": [64],
                "--grain ": [16],
                "--iterations ": [2],
            },
            runs=1,
            csv_path=tmp_path / "perf2.csv",
            reuse_work=True,
        )
        full_times = {(r["threads"]): r["time_us"] for r in full if r["run"] == 0}
        fast_times = {(r["threads"]): r["time_us"] for r in fast}
        assert fast_times == pytest.approx(full_times)

    def test_runs_are_deterministic(self, tmp_path):
        rows = self._sweep(tmp_path)
        by_threads = {}
        for r in rows:
            by_threads.setdefault(r["threads"], set()).add(r["time_us"])
        # virtual time: identical across repetitions
        assert all(len(v) == 1 for v in by_threads.values())

    def test_unknown_program_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            execute("make", {}, {}, csv_path=tmp_path / "x.csv")
