"""Tests for pluggable work domains (wavefront DAGs, quadtrees, slabs).

Three layers are covered here:

* domain construction invariants (coverage, topological order, waves)
  — property-tested with hypothesis;
* the policy-aware DAG simulator against its closed-form makespan and
  against the recorded event loop (dependency respect, per-CPU
  non-overlap, work conservation) on every domain kind;
* end-to-end kernel runs: lu_wavefront and heat3d bit-identical across
  backends, the static-vs-dynamic gap on dependency waves, quadtree ==
  tiled on sandpile, N-d footprints round-tripping through traces, the
  sweep's ``domain`` provenance column, and the domain-aware views.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import RunConfig
from repro.core.domains import (
    DOMAINS,
    QuadtreeDomain,
    Slab3DDomain,
    WavefrontDomain,
    WorkDomain,
    make_domain,
)
from repro.core.engine import run
from repro.core.tiling import TileGrid
from repro.errors import ConfigError
from repro.sched.costmodel import CostModel
from repro.sched.dag_sim import dag_policy_makespan, simulate_dag_policy
from repro.sched.policies import parse_schedule
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def _domain_of_kind(kind: str) -> WorkDomain:
    cfg = dict(kernel="mandel", variant="omp_tiled", dim=32, tile_w=8, tile_h=8)
    if kind == "slab3d":
        cfg["kernel"] = "heat3d"
    if kind == "wavefront":
        cfg["kernel"] = "lu_wavefront"
    return make_domain(RunConfig(domain=kind, **cfg))


# --------------------------------------------------------------------------
# Protocol + construction invariants
# --------------------------------------------------------------------------


class TestProtocol:
    def test_tilegrid_is_a_workdomain(self):
        grid = TileGrid(32, 8)
        assert isinstance(grid, WorkDomain)
        assert grid.dependencies() is None
        assert grid.projection() == "plane"
        assert grid.coverage_ok()

    @pytest.mark.parametrize("kind", DOMAINS)
    def test_every_kind_satisfies_the_contract(self, kind):
        dom = _domain_of_kind(kind)
        assert isinstance(dom, WorkDomain)
        assert dom.kind == kind
        assert len(dom) > 0
        items = list(dom)
        assert [t.index for t in items] == list(range(len(dom)))
        assert dom[0] is items[0]
        assert dom.coverage_ok()
        deps = dom.dependencies()
        if deps is not None:
            assert len(deps) == len(dom)
            for i, preds in enumerate(deps):
                assert all(0 <= p < i for p in preds)  # topological order

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(kernel="mandel", variant="omp_tiled", domain="torus")

    def test_make_domain_unknown_kind(self):
        class Fake:
            domain = "torus"
            dim = 32
            dim_y = 0
            dim_z = 0
            tile_w = 8
            tile_h = 8

        with pytest.raises(ConfigError):
            make_domain(Fake())


class TestWavefrontDomain:
    @settings(max_examples=30, deadline=None)
    @given(nb=st.integers(min_value=1, max_value=6),
           block=st.integers(min_value=1, max_value=8))
    def test_invariants(self, nb, block):
        dom = WavefrontDomain(nb * block, block)
        assert dom.nb == nb
        # one diag + 2(nb-k-1) panels + (nb-k-1)^2 trails per step
        assert len(dom) == sum(m * m for m in range(1, nb + 1))
        assert dom.waves == 3 * nb - 2
        assert dom.coverage_ok()
        deps = dom.dependencies()
        for i, preds in enumerate(deps):
            assert all(0 <= p < i for p in preds)
        # diag(0,0) has no predecessors; everything later hangs off it
        assert deps[0] == []
        if len(dom) > 1:
            assert all(deps[i] for i in range(1, len(dom)))

    def test_clipped_edge_blocks(self):
        dom = WavefrontDomain(20, 8)  # 3x3 blocks, last one 4px wide
        assert dom.nb == 3
        x, y, w, h = dom.block_rect(2, 2)
        assert (x, y, w, h) == (16, 16, 4, 4)

    def test_wave_indices_follow_steps(self):
        dom = WavefrontDomain(32, 8)
        for t in dom:
            assert t.wave == 3 * t.step + {"diag": 0, "row": 1, "col": 1,
                                           "trail": 2}[t.op]

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            WavefrontDomain(0, 8)
        with pytest.raises(ConfigError):
            WavefrontDomain(16, 32)


class TestQuadtreeDomain:
    @settings(max_examples=30, deadline=None)
    @given(dim=st.sampled_from([16, 24, 32, 48]),
           tile=st.sampled_from([4, 8, 16]),
           depth=st.integers(min_value=0, max_value=3))
    def test_exact_partition(self, dim, tile, depth):
        dom = QuadtreeDomain(dim, tile, max_depth=depth)
        paint = np.zeros((dom.dim_y, dom.dim_x), dtype=np.int32)
        for t in dom:
            paint[t.y : t.y + t.h, t.x : t.x + t.w] += 1
        assert (paint == 1).all()  # disjoint AND covering
        assert dom.coverage_ok()
        assert dom.dependencies() is None

    def test_center_is_refined(self):
        dom = QuadtreeDomain(64, 16, max_depth=2)
        smallest = min(t.area for t in dom)
        center = [t for t in dom if t.x <= 32 < t.x + t.w and t.y <= 32 < t.y + t.h]
        border = [t for t in dom if t.x == 0 and t.y == 0]
        assert all(t.area == smallest for t in center)
        assert all(t.area == 16 * 16 for t in border)
        assert len(dom) > (64 // 16) ** 2

    def test_depth_zero_is_the_plain_grid(self):
        dom = QuadtreeDomain(32, 8, max_depth=0)
        grid = TileGrid(32, 8)
        assert [(t.x, t.y, t.w, t.h) for t in dom] == [
            (t.x, t.y, t.w, t.h) for t in grid
        ]

    def test_parent_projection_coords(self):
        dom = QuadtreeDomain(64, 16, max_depth=2)
        for t in dom:
            assert t.row == t.y // 16 and t.col == t.x // 16


class TestSlab3DDomain:
    @settings(max_examples=30, deadline=None)
    @given(dim_z=st.integers(min_value=1, max_value=40),
           slab=st.integers(min_value=1, max_value=16))
    def test_slabs_cover_the_depth(self, dim_z, slab):
        slab = min(slab, dim_z)
        dom = Slab3DDomain(16, 16, dim_z, slab)
        assert dom.coverage_ok()
        assert sum(s.d for s in dom) == dim_z
        z = 0
        for s in dom:
            assert s.z0 == z and s.d >= 1
            assert (s.x, s.y, s.w, s.h) == (0, s.z0, 16, s.d)
            z += s.d
        assert dom.projection() == "depth"

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            Slab3DDomain(16, 16, 0, 4)
        with pytest.raises(ConfigError):
            Slab3DDomain(16, 16, 8, 16)


# --------------------------------------------------------------------------
# DAG simulator: closed form == timeline, schedule semantics
# --------------------------------------------------------------------------


class TestDagPolicy:
    @settings(max_examples=40, deadline=None)
    @given(nb=st.integers(min_value=1, max_value=4),
           ncpus=st.integers(min_value=1, max_value=6),
           seed=st.integers(min_value=0, max_value=999),
           spec=st.sampled_from(["static", "static,2", "dynamic",
                                 "dynamic,2", "guided"]))
    def test_makespan_matches_timeline(self, nb, ncpus, seed, spec):
        """The closed-form replay path must agree bit-for-bit with the
        timeline the event loop records."""
        dom = WavefrontDomain(nb * 8, 8)
        rnd = np.random.default_rng(seed)
        costs = rnd.uniform(0.5, 2.0, size=len(dom)).tolist()
        policy = parse_schedule(spec)
        deps = dom.dependencies()
        tl = simulate_dag_policy(costs, deps, policy, ncpus, model=ZERO)
        closed = dag_policy_makespan(costs, deps, policy, ncpus, model=ZERO)
        assert closed == tl.makespan  # bit-identical, not approx
        tl.validate()

    @settings(max_examples=30, deadline=None)
    @given(kind=st.sampled_from(DOMAINS),
           ncpus=st.integers(min_value=1, max_value=4),
           spec=st.sampled_from(["static", "dynamic"]))
    def test_work_conservation_and_non_overlap(self, kind, ncpus, spec):
        """Every item runs exactly once and no CPU runs two at a time,
        whatever the domain kind."""
        dom = _domain_of_kind(kind)
        costs = [float(t.area) for t in dom]
        deps = dom.dependencies() or [[] for _ in dom]
        tl = simulate_dag_policy(costs, deps, parse_schedule(spec), ncpus,
                                 items=list(dom), model=ZERO)
        assert len(tl) == len(dom)  # work conservation
        assert sorted(e.item.index for e in tl.execs) == list(range(len(dom)))
        by_cpu: dict[int, list] = {}
        for e in tl.execs:
            by_cpu.setdefault(e.cpu, []).append((e.start, e.end))
        for spans in by_cpu.values():
            spans.sort()
            for (s0, e0), (s1, _) in zip(spans, spans[1:]):
                assert e0 <= s1 + 1e-12  # per-CPU non-overlap
        end = {e.meta["tid"]: e.end for e in tl.execs}
        start = {e.meta["tid"]: e.start for e in tl.execs}
        for i, preds in enumerate(deps):
            for p in preds:
                assert end[p] <= start[i] + 1e-12

    def test_static_idles_on_unmet_deps(self):
        # a two-task chain split across two CPUs: static waits, so the
        # second CPU's task cannot start before the first finishes
        deps = [[], [0]]
        tl = simulate_dag_policy([1.0, 1.0], deps, parse_schedule("static"),
                                 2, model=ZERO)
        assert tl.makespan == pytest.approx(2.0)


# --------------------------------------------------------------------------
# End-to-end kernel runs
# --------------------------------------------------------------------------


class TestLuWavefront:
    CFG = dict(kernel="lu_wavefront", dim=64, tile_w=16, tile_h=16,
               iterations=1, seed=11)

    def test_factorization_is_correct(self):
        # finalize() raises if L @ U does not reconstruct the matrix
        r = run(make_config(variant="omp_tiled", **self.CFG))
        assert r.completed_iterations == 1

    def test_seq_equals_parallel(self):
        a = run(make_config(variant="seq", **self.CFG))
        b = run(make_config(variant="omp_tiled", nthreads=4, **self.CFG))
        assert np.array_equal(a.context.data["mat"], b.context.data["mat"])

    def test_bit_identical_across_backends(self):
        ref = run(make_config(variant="omp_tiled", **self.CFG))
        for backend in ("threads", "procs"):
            other = run(make_config(variant="omp_tiled", backend=backend,
                                    nthreads=2, **self.CFG))
            assert np.array_equal(
                ref.context.data["mat"], other.context.data["mat"]
            ), backend

    def test_static_visibly_loses_to_dynamic(self):
        """The tentpole's scheduling lesson: dependency waves starve a
        fixed assignment, dynamic dispatch keeps CPUs busy."""
        static = run(make_config(variant="omp_tiled", schedule="static",
                                 nthreads=4, **self.CFG))
        dynamic = run(make_config(variant="omp_tiled", schedule="dynamic",
                                  nthreads=4, **self.CFG))
        assert np.array_equal(
            static.context.data["mat"], dynamic.context.data["mat"]
        )
        assert dynamic.virtual_time < static.virtual_time

    def test_trace_records_dag_metadata(self):
        r = run(make_config(variant="omp_tiled", trace=True, **self.CFG))
        dom = WavefrontDomain(64, 16)
        events = [e for e in r.trace.events if e.extra.get("rmode") == "dag"]
        assert len(events) == len(dom)
        assert r.trace.meta.extra.get("domain") == "wavefront"
        end = {e.extra["tid"]: e.end for e in events}
        start = {e.extra["tid"]: e.start for e in events}
        deps = dom.dependencies()
        for e in events:
            for p in e.extra["preds"]:
                assert end[p] <= start[e.extra["tid"]] + 1e-12
            assert list(e.extra["preds"]) == deps[e.extra["tid"]]


class TestHeat3D:
    CFG = dict(kernel="heat3d", dim=32, tile_w=8, tile_h=8, iterations=3,
               seed=5)

    def test_seq_equals_parallel(self):
        a = run(make_config(variant="seq", **self.CFG))
        b = run(make_config(variant="omp_tiled", nthreads=4, **self.CFG))
        assert np.array_equal(a.context.data["temp3"], b.context.data["temp3"])

    def test_bit_identical_across_backends(self):
        ref = run(make_config(variant="omp_tiled", **self.CFG))
        for backend in ("threads", "procs"):
            other = run(make_config(variant="omp_tiled", backend=backend,
                                    nthreads=2, **self.CFG))
            assert np.array_equal(
                ref.context.data["temp3"], other.context.data["temp3"]
            ), backend

    def test_footprints_are_3d_and_race_free(self):
        from repro.analyze import check_races
        from repro.analyze.footprint import tasks_by_region

        r = run(make_config(variant="omp_tiled", trace=True, footprints=True,
                            **self.CFG))
        regions = [reg for rt in tasks_by_region(r.trace)
                   for t in rt.tasks for reg in (*t.reads, *t.writes)]
        assert any(len(reg) == 7 for reg in regions)  # (buf,x,y,w,h,z,d)
        assert check_races(r.trace).clean

    def test_3d_footprints_cross_the_procs_ring(self):
        """The widened telemetry record must carry z/depth intact."""
        r = run(make_config(variant="omp_tiled", backend="procs", nthreads=2,
                            trace=True, footprints=True, **self.CFG))
        regions = [reg for e in r.trace.events
                   for reg in (*e.reads, *e.writes)]
        assert any(len(reg) == 7 and reg[6] > 1 for reg in regions)


class TestQuadtreeKernel:
    def test_quadtree_equals_tiled(self):
        cfg = dict(kernel="sandpile", dim=64, tile_w=16, tile_h=16,
                   iterations=20, arg="center")
        a = run(make_config(variant="omp_tiled", **cfg))
        b = run(make_config(variant="omp_quadtree", **cfg))
        assert np.array_equal(a.image, b.image)

    def test_trace_has_varied_tile_sizes(self):
        r = run(make_config(kernel="sandpile", variant="omp_quadtree", dim=64,
                            tile_w=16, tile_h=16, iterations=2, arg="center",
                            trace=True))
        sizes = {(e.w, e.h) for e in r.trace.events if e.has_tile}
        assert len(sizes) > 1  # refined center tiles + coarse border tiles


class TestNonSquareGrid:
    def test_rect_grid_geometry(self):
        grid = TileGrid(64, 16, 8, dim_y=32)
        assert grid.dim_x == 64 and grid.dim_y == 32
        assert grid.rows == 4 and grid.cols == 4
        assert sum(t.area for t in grid) == 64 * 32

    def test_non_square_run_matches_seq(self):
        cfg = dict(kernel="mandel", dim=64, dim_y=32, tile_w=16, tile_h=8,
                   iterations=2)
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="omp_tiled", nthreads=4, **cfg))
        assert a.image.shape == (32, 64)
        assert np.array_equal(a.image, b.image)


class TestPlainKernelsUnderOtherDomains:
    """An idempotent per-rect kernel runs under any decomposition: the
    pixels are the same, only the work items differ."""

    @pytest.mark.parametrize("kind", ["wavefront", "quadtree", "slab3d"])
    def test_mandel_image_is_domain_invariant(self, kind):
        base = run(make_config(kernel="mandel", variant="omp_tiled",
                               dim=32, tile_w=8, tile_h=8, iterations=1))
        other = run(make_config(kernel="mandel", variant="omp_tiled",
                                dim=32, tile_w=8, tile_h=8, iterations=1,
                                domain=kind))
        assert np.array_equal(base.image, other.image)


# --------------------------------------------------------------------------
# Sweep provenance + views
# --------------------------------------------------------------------------


class TestDomainSweep:
    def test_domain_column_recorded(self, tmp_path):
        from repro.expt.csvdb import read_rows
        from repro.expt.sweep_cli import main as sweep_main

        csv = tmp_path / "domains.csv"
        rc = sweep_main([
            "-k", "mandel", "-v", "omp_tiled", "-s", "32", "-g", "8",
            "-i", "1", "--threads", "2", "--schedule", "dynamic",
            "--domain", "grid,wavefront", "--csv", str(csv), "-q",
        ])
        assert rc == 0
        rows = read_rows(str(csv))
        assert len(rows) == 2
        assert {r["domain"] for r in rows} == {"grid", "wavefront"}
        assert all(r["status"] == "ok" for r in rows)


class TestDomainViews:
    def test_wavefront_gantt_and_depths(self, tmp_path):
        from repro.view.domains import wave_depths, wavefront_gantt_svg

        r = run(make_config(kernel="lu_wavefront", variant="omp_tiled",
                            dim=64, tile_w=16, tile_h=16, iterations=1,
                            trace=True))
        events = [e for e in r.trace.events if e.has_tile]
        depth = wave_depths(events)
        dom = WavefrontDomain(64, 16)
        # longest-path depth recomputed from the trace == the domain's
        # wave labels (the trace needs no extra fields for the chart)
        for t, e in zip(dom, sorted(events, key=lambda e: e.extra["tid"])):
            assert depth[e.extra["tid"]] == t.wave
        svg = wavefront_gantt_svg(r.trace).tostring()
        assert "waves" in svg and "<svg" in svg
        out = wavefront_gantt_svg(r.trace).save(tmp_path / "wave.svg")
        assert out.exists()

    def test_tiling_map_renders_irregular_tiles(self):
        from repro.view.domains import tiling_map_svg

        r = run(make_config(kernel="sandpile", variant="omp_quadtree",
                            dim=64, tile_w=16, tile_h=16, iterations=2,
                            arg="center", trace=True))
        svg = tiling_map_svg(r.trace).tostring()
        assert svg.count("<rect") > (64 // 16) ** 2  # refined > coarse grid

    def test_divergence_map_from_gpu_trace(self):
        from repro.view.domains import divergence_map_svg

        r = run(make_config(kernel="mandel", variant="ocl", dim=64,
                            tile_w=8, tile_h=8, iterations=1, trace=True))
        svg = divergence_map_svg(r.trace).tostring()
        assert "divergence" in svg
        assert svg.count("<rect") >= 64  # one per work-group + frame
        assert r.counters.get("gpu_lockstep_work", 0) >= r.counters.get(
            "gpu_lane_work", 1
        )
