"""Integration tests: every figure's qualitative claim, at test scale.

Each test mirrors one benchmark target (see DESIGN.md's per-experiment
index) with small sizes, asserting the *shape* the paper reports.
"""

import numpy as np

from repro.core.engine import run
from repro.trace.compare import TraceComparison
from repro.trace.coverage import locality_score
from tests.conftest import make_config


def mandel(**kw):
    base = dict(kernel="mandel", variant="omp_tiled", dim=128, tile_w=16,
                tile_h=16, iterations=2, nthreads=4)
    base.update(kw)
    return run(make_config(**base))


class TestFig3Monitoring:
    """Static distribution of mandel tiles => visible load imbalance."""

    def test_load_imbalance_between_cpus(self):
        r = mandel(schedule="static", monitoring=True)
        loads = r.monitor.records[-1].load_percent()
        assert max(loads) > 95.0
        assert min(loads) < 60.0

    def test_idleness_accumulates(self):
        r = mandel(schedule="static", iterations=3, monitoring=True)
        hist = r.monitor.idleness_history
        assert all(b >= a for a, b in zip(hist, hist[1:]))
        assert hist[-1] > 0


class TestFig4SchedulingPolicies:
    """Tiling-window signatures of the four policies."""

    def _tiling(self, schedule):
        r = mandel(schedule=schedule, iterations=1, monitoring=True)
        return r, r.monitor.records[0]

    def test_static_contiguous_blocks(self):
        _, rec = self._tiling("static")
        flat = rec.tiling.ravel()
        # collapse(2) static: each CPU owns one contiguous index range
        changes = (np.diff(flat) != 0).sum()
        assert changes == 3  # exactly ncpus-1 boundaries

    def test_dynamic_interleaves(self):
        _, rec = self._tiling("dynamic,2")
        flat = rec.tiling.ravel()
        changes = (np.diff(flat) != 0).sum()
        assert changes > 10  # opportunistic: many ownership changes

    def test_nonmonotonic_static_blocks_plus_steals(self):
        r, rec = self._tiling("nonmonotonic:dynamic")
        assert rec.stolen.any()  # work stealing corrected imbalance
        # non-stolen tiles still sit in their static block
        flat = rec.tiling.ravel()
        stolen_flat = rec.stolen.ravel()
        own = [c for c, s in zip(flat, stolen_flat) if not s]
        changes = sum(1 for a, b in zip(own, own[1:]) if a != b)
        assert changes <= 4

    def test_guided_chunks_decrease(self):
        from repro.sched.policies import parse_schedule
        from repro.sched.simulator import simulate
        from repro.sched.costmodel import DEFAULT_COST_MODEL

        res = simulate([1e-4] * 64, parse_schedule("guided"), 4,
                       model=DEFAULT_COST_MODEL)
        sizes = res.chunk_sizes()
        assert sizes[0] > sizes[-1]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestPerfMode:
    """§II-C: '50 iterations completed in 579 ms' style output."""

    def test_output_line(self):
        r = mandel(iterations=5)
        assert r.summary().startswith("5 iterations completed in")


class TestFig6Speedups:
    """Speedup ordering: dynamic/guided/nonmonotonic scale, static lags."""

    def test_schedule_ordering_at_8_threads(self):
        times = {
            s: mandel(schedule=s, nthreads=8, iterations=2).virtual_time
            for s in ["static", "dynamic,2", "guided", "nonmonotonic:dynamic"]
        }
        assert times["dynamic,2"] < times["static"]
        assert times["nonmonotonic:dynamic"] < times["static"]
        assert times["guided"] < times["static"]

    def test_dynamic_scales_with_threads(self):
        seq = mandel(nthreads=1, iterations=2).virtual_time
        t4 = mandel(nthreads=4, iterations=2).virtual_time
        t8 = mandel(nthreads=8, iterations=2).virtual_time
        assert seq / t4 > 3.0
        assert seq / t8 > 5.5

    def test_static_speedup_plateaus(self):
        seq = mandel(nthreads=1, iterations=2).virtual_time
        t8 = mandel(schedule="static", nthreads=8, iterations=2).virtual_time
        assert seq / t8 < 5.0  # far from linear


class TestFig8DynamicPatterns:
    """dynamic,1 with small tiles: stripes in cheap rows, cyclic in
    uniform-cost areas."""

    def test_stripes_of_one_color_appear(self):
        """Pattern 1: runs of tiles computed by the same thread, because
        the other threads are stuck on heavy in-set tiles."""
        r = mandel(schedule="dynamic", dim=128, tile_w=8, tile_h=8,
                   iterations=1, monitoring=True)
        tiling = r.monitor.records[0].tiling
        best_run = 0
        for row in tiling:
            run = 1
            for a, b in zip(row, row[1:]):
                run = run + 1 if a == b else 1
                best_run = max(best_run, run)
        assert best_run >= 5

    def test_cyclic_in_uniform_cost_area(self):
        """Pattern 2: where all tiles cost the same, the dynamic
        distribution turns into a regular cyclic one."""
        r = mandel(schedule="dynamic", dim=128, tile_w=8, tile_h=8,
                   iterations=1, monitoring=True)
        rec = r.monitor.records[0]
        heat = rec.heat
        ratios = heat.max(axis=1) / np.maximum(heat.min(axis=1), 1e-300)
        row = int(ratios.argmin())  # the most uniform-cost tile row
        owners = rec.tiling[row].tolist()
        changes = sum(1 for a, b in zip(owners, owners[1:]) if a != b)
        assert changes >= len(owners) - 2  # (quasi-)perfect cyclic


class TestFig9Heatmap:
    def test_mandel_heat_correlates_with_set(self):
        r = mandel(iterations=1, monitoring=True)
        rec = r.monitor.records[0]
        # black (in-set) pixel fraction per tile
        img = r.image
        dark = (img >> 8) == 0
        frac = dark.reshape(8, 16, 8, 16).mean(axis=(1, 3))
        heat = rec.heat
        # tiles with more set pixels cost more (positive correlation)
        corr = np.corrcoef(frac.ravel(), heat.ravel())[0, 1]
        assert corr > 0.6

    def test_blur_border_tiles_brighter(self):
        r = run(make_config(kernel="blur", variant="omp_tiled_opt", dim=64,
                            tile_w=8, tile_h=8, iterations=1, nthreads=4,
                            monitoring=True))
        heat = r.monitor.records[0].heat
        assert heat[0].mean() > 2 * heat[1:-1, 1:-1].mean()


class TestFig10BlurComparison:
    def test_overall_3x_and_tiles_8x(self):
        # the paper's geometry: a 16x16 tile grid (dim 512, tile 32 there;
        # dim 256, tile 16 here) -> ~23% border tiles -> ~3x overall
        cfg = dict(kernel="blur", dim=256, tile_w=16, tile_h=16, iterations=2,
                   nthreads=4, trace=True)
        basic = run(make_config(variant="omp_tiled", **cfg))
        opt = run(make_config(variant="omp_tiled_opt", **cfg))
        cmp_ = TraceComparison(basic.trace, opt.trace)
        assert 2.0 < cmp_.overall_factor() < 4.5
        med, p90 = cmp_.speedup_quantiles()
        assert p90 >= 7.5  # "many tasks approximately 10 times faster"

    def test_locality_of_nonmonotonic_vs_dynamic(self):
        cfg = dict(kernel="blur", variant="omp_tiled", dim=128, tile_w=16,
                   tile_h=16, iterations=4, nthreads=4, trace=True)
        nm = run(make_config(schedule="nonmonotonic:dynamic", **cfg))
        dyn = run(make_config(schedule="dynamic", **cfg))
        assert locality_score(nm.trace) < locality_score(dyn.trace)


class TestFig12TaskWave:
    def test_wave_depth_matches_grid(self):
        r = run(make_config(kernel="cc", variant="omp_task", dim=64, tile_w=16,
                            tile_h=16, iterations=4, nthreads=8, trace=True))
        events = [e for e in r.trace.events
                  if e.kind == "task_dr" and e.iteration == 1]
        # group start times: tasks form 2*4-1 = 7 distinct waves at most
        starts = sorted({round(e.start, 9) for e in events})
        assert len(starts) >= 4  # strictly more phases than a flat loop


class TestFig13MpiLife:
    def test_half_image_per_process_and_diagonal_tiles_only(self):
        r = run(make_config(kernel="life", variant="mpi_omp", mpi_np=2,
                            dim=256, tile_w=16, tile_h=16, iterations=6,
                            arg="diag", monitoring=True, debug="M"))
        for rank, rr in enumerate(r.rank_results):
            rec = rr.monitor.records[-1]
            computed = np.argwhere(rec.tiling >= 0)
            rows = computed[:, 0]
            half = rec.tiling.shape[0] // 2
            if rank == 0:
                assert rows.max() < half
            else:
                assert rows.min() >= half
            # sparse: only diagonal-ish tiles computed
            assert rec.computed_fraction() < 0.5

    def test_threads_within_each_process(self):
        r = run(make_config(kernel="life", variant="mpi_omp", mpi_np=2,
                            dim=128, tile_w=16, tile_h=16, iterations=4,
                            nthreads=4, arg="random", monitoring=True,
                            debug="M"))
        for rr in r.rank_results:
            cpus = set()
            for rec in rr.monitor.records:
                cpus |= set(np.unique(rec.tiling[rec.tiling >= 0]).tolist())
            assert len(cpus) == 4  # 2 processes x 4 threads (Fig. 13)
