"""Tests for the Julia mode of mandel + smoke tests for the examples."""

import runpy

import numpy as np

from repro.core.engine import run
from repro.kernels.mandel import mandel_counts
from tests.conftest import make_config


class TestJuliaMode:
    def test_julia_dynamics_differ_from_mandel(self):
        cr = np.linspace(-1.5, 1.5, 8)[np.newaxis, :]
        ci = np.linspace(-1.5, 1.5, 8)[:, np.newaxis]
        mandel, _ = mandel_counts(cr, ci, 64)
        julia, _ = mandel_counts(cr, ci, 64, julia_c=(-0.8, 0.156))
        assert not np.array_equal(mandel, julia)

    def test_julia_of_zero_c_is_unit_disk(self):
        # z -> z^2 with c=0: points inside |z|<1 never escape
        cr = np.array([[0.5, 2.0]])
        ci = np.array([[0.0, 0.0]])
        counts, _ = mandel_counts(cr, ci, 50, julia_c=(0.0, 0.0))
        assert counts[0, 0] == 50  # |0.5| < 1: stays bounded
        assert counts[0, 1] < 5  # |2| > 1: escapes fast

    def test_variants_agree_in_julia_mode(self):
        cfg = dict(kernel="mandel", dim=64, tile_w=16, tile_h=16,
                   iterations=2, arg="julia")
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="omp_tiled", nthreads=4, **cfg))
        assert np.array_equal(a.image, b.image)

    def test_arg_parsing(self):
        r = run(make_config(kernel="mandel", variant="seq", iterations=1,
                            arg="julia:-0.4:0.6:32"))
        assert r.context.data["julia_c"] == (-0.4, 0.6)
        assert r.context.data["max_iter"] == 32

    def test_default_c(self):
        r = run(make_config(kernel="mandel", variant="seq", iterations=1,
                            arg="julia"))
        assert r.context.data["julia_c"] == (-0.8, 0.156)


class TestExamples:
    """Smoke-run the shipped examples (they print and write into dump/)."""

    def _run_example(self, name, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # dump/ files land in the tmp dir
        import pathlib

        script = pathlib.Path(__file__).parent.parent / "examples" / name
        runpy.run_path(str(script), run_name="__main__")
        return capsys.readouterr().out

    def test_quickstart(self, tmp_path, monkeypatch, capsys):
        out = self._run_example("quickstart.py", tmp_path, monkeypatch, capsys)
        assert "speedup" in out
        assert "Tiling window" in out
        assert (tmp_path / "dump" / "quickstart_mandel.ppm").exists()

    def test_blur_stencil(self, tmp_path, monkeypatch, capsys):
        out = self._run_example("blur_stencil.py", tmp_path, monkeypatch, capsys)
        assert "gain" in out
        assert "overall speedup" in out
        assert (tmp_path / "dump" / "blur_basic.evt").exists()

    def test_cc_taskdeps(self, tmp_path, monkeypatch, capsys):
        out = self._run_example("cc_taskdeps.py", tmp_path, monkeypatch, capsys)
        assert "anti-diagonal" in out
        assert "sequential execution" in out
