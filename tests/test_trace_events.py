"""Tests for the trace data model."""


from repro.trace.events import Trace, TraceEvent, TraceMeta


def ev(it=1, cpu=0, start=0.0, end=1.0, **kw):
    return TraceEvent(iteration=it, cpu=cpu, start=start, end=end, **kw)


class TestTraceEvent:
    def test_duration(self):
        assert ev(start=1.0, end=3.5).duration == 2.5

    def test_has_tile(self):
        assert not ev().has_tile
        assert ev(x=0, y=0, w=4, h=4).has_tile

    def test_dict_roundtrip(self):
        e = ev(x=3, y=4, w=5, h=6, kind="task", extra={"stolen": True})
        assert TraceEvent.from_dict(e.to_dict()) == e

    def test_to_dict_drops_empty_extra(self):
        assert "extra" not in ev().to_dict()

    def test_from_dict_defaults(self):
        e = TraceEvent.from_dict({"iteration": 1, "cpu": 0, "start": 0, "end": 1})
        assert e.x == -1 and e.kind == "tile" and e.extra == {}


class TestTraceMeta:
    def test_roundtrip(self):
        m = TraceMeta(kernel="mandel", variant="omp", dim=64, ncpus=4,
                      schedule="dynamic")
        again = TraceMeta.from_dict(m.to_dict())
        assert again == m

    def test_ignores_unknown_keys(self):
        m = TraceMeta.from_dict({"kernel": "x", "future_field": 1})
        assert m.kernel == "x"


class TestTrace:
    def _trace(self):
        return Trace(
            TraceMeta(ncpus=2),
            [
                ev(it=1, cpu=0, start=0, end=1),
                ev(it=1, cpu=1, start=0, end=2),
                ev(it=2, cpu=0, start=2, end=3),
                ev(it=3, cpu=1, start=3, end=4),
            ],
        )

    def test_len_iter(self):
        t = self._trace()
        assert len(t) == 4
        assert len(list(t)) == 4

    def test_iterations_sorted_unique(self):
        assert self._trace().iterations == [1, 2, 3]

    def test_duration(self):
        assert self._trace().duration == 4.0

    def test_iteration_events(self):
        assert len(self._trace().iteration_events(1)) == 2
        assert self._trace().iteration_events(9) == []

    def test_iteration_range(self):
        assert len(self._trace().iteration_range(1, 2)) == 3

    def test_cpu_events_sorted(self):
        t = Trace(TraceMeta(ncpus=1), [ev(start=5, end=6), ev(start=0, end=1)])
        starts = [e.start for e in t.cpu_events(0)]
        assert starts == [0, 5]

    def test_ncpus_from_meta_or_events(self):
        assert self._trace().ncpus == 2
        t = Trace(TraceMeta(), [ev(cpu=5)])
        assert t.ncpus == 6

    def test_sorted_copy(self):
        t = Trace(TraceMeta(), [ev(start=5, end=6), ev(start=0, end=1)])
        s = t.sorted()
        assert [e.start for e in s] == [0, 5]
        assert [e.start for e in t] == [5, 0]  # original untouched
