"""Cross-module property-based tests (hypothesis).

These check invariants that tie several subsystems together on randomly
generated configurations — the system-level contracts individual module
tests cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import run
from repro.sched.costmodel import CostModel
from repro.sched.policies import parse_schedule
from repro.sched.simulator import simulate
from tests.conftest import make_config

SCHEDULES = ["static", "static,2", "dynamic", "dynamic,3", "guided",
             "nonmonotonic:dynamic", "nonmonotonic:dynamic,2"]

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


@settings(max_examples=25, deadline=None)
@given(
    dim=st.sampled_from([16, 32, 48]),
    tile=st.sampled_from([4, 8, 16]),
    nthreads=st.integers(1, 6),
    schedule=st.sampled_from(SCHEDULES),
    seed=st.integers(0, 3),
)
def test_invert_every_config_matches_seq(dim, tile, nthreads, schedule, seed):
    """Property: any (geometry, team, schedule) combination computes the
    same image as the sequential variant."""
    cfg = dict(kernel="invert", dim=dim, tile_w=tile, tile_h=tile,
               iterations=2, seed=seed)
    ref = run(make_config(variant="seq", nthreads=1, **cfg))
    par = run(make_config(variant="omp_tiled", nthreads=nthreads,
                          schedule=schedule, **cfg))
    assert np.array_equal(ref.image, par.image)


@settings(max_examples=25, deadline=None)
@given(
    nthreads=st.integers(1, 8),
    schedule=st.sampled_from(SCHEDULES),
)
def test_monitor_busy_equals_trace_busy(nthreads, schedule):
    """Property: the Monitor's per-CPU busy totals equal the trace's —
    the two observation paths never disagree."""
    r = run(make_config(kernel="mandel", variant="omp_tiled",
                        nthreads=nthreads, schedule=schedule,
                        monitoring=True, trace=True, iterations=2))
    from repro.trace.stats import per_cpu_busy

    mon_busy = [0.0] * nthreads
    for rec in r.monitor.records:
        for c, b in enumerate(rec.busy):
            mon_busy[c] += b
    assert mon_busy == pytest.approx(per_cpu_busy(r.trace))


@settings(max_examples=25, deadline=None)
@given(
    nthreads=st.integers(1, 8),
    schedule=st.sampled_from(SCHEDULES),
    iterations=st.integers(1, 3),
)
def test_trace_event_count_for_eager_kernels(nthreads, schedule, iterations):
    """Property: eager tiled kernels record exactly tiles x iterations
    events, each within its iteration's time bounds."""
    r = run(make_config(kernel="spin", variant="omp_tiled",
                        nthreads=nthreads, schedule=schedule,
                        iterations=iterations, trace=True))
    assert len(r.trace) == 16 * iterations  # 64/16 grid
    for e in r.trace.events:
        assert 0 <= e.start <= e.end <= r.virtual_time + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    costs=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=50),
    ncpus=st.integers(1, 8),
    schedule=st.sampled_from(SCHEDULES),
)
def test_more_cpus_never_hurt_without_overheads(costs, ncpus, schedule):
    """Property: with zero overheads, doubling the team never increases
    the makespan for static/dynamic/guided policies."""
    policy = parse_schedule(schedule)
    one = simulate(costs, policy, ncpus, model=ZERO).makespan
    two = simulate(costs, policy, ncpus * 2, model=ZERO).makespan
    if schedule.startswith("static") or schedule.startswith("nonmonotonic"):
        # block shapes change: allow small regressions only for stealing
        # policies where chunk boundaries shift
        assert two <= one * 1.5 + 1e-9
    else:
        assert two <= one + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    nthreads=st.integers(1, 6),
    schedule=st.sampled_from(SCHEDULES),
)
def test_vclock_equals_trace_end_plus_overheads(nthreads, schedule):
    """Property: the run's virtual time is never before the last trace
    event and only exceeds it by accumulated fork/join overheads."""
    r = run(make_config(kernel="mandel", variant="omp_tiled",
                        nthreads=nthreads, schedule=schedule, trace=True,
                        iterations=2))
    last_end = max(e.end for e in r.trace.events)
    assert r.virtual_time >= last_end
    # 2 iterations => 2 parallel regions => 2 fork/joins (+ masters)
    from repro.sched.costmodel import DEFAULT_COST_MODEL

    slack = r.virtual_time - last_end
    assert slack <= 4 * DEFAULT_COST_MODEL.fork_join_overhead + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5), np_=st.sampled_from([1, 2, 4]))
def test_life_mpi_matches_seq_any_seed(seed, np_):
    """Property: the distributed Game of Life equals the sequential one
    for arbitrary random boards and world sizes."""
    cfg = dict(kernel="life", dim=32, tile_w=8, tile_h=8, iterations=4,
               arg="random", seed=seed)
    ref = run(make_config(variant="seq", **cfg))
    mpi = run(make_config(variant="mpi_omp", mpi_np=np_, **cfg))
    assert np.array_equal(ref.image, mpi.image)


@settings(max_examples=15, deadline=None)
@given(
    sigma=st.floats(0.0, 0.2),
    run_index=st.integers(0, 3),
    nthreads=st.integers(1, 4),
)
def test_jittered_replay_identity(sigma, run_index, nthreads):
    """Property: work-profile replay reproduces full-run times exactly,
    for any noise level and repetition index."""
    from repro.expt.replay import WorkProfileCache

    cfg = make_config(kernel="spin", variant="omp_tiled", iterations=2,
                      jitter=sigma, run_index=run_index, nthreads=nthreads)
    cache = WorkProfileCache()
    assert cache.simulate(cfg) == pytest.approx(run(cfg).virtual_time)


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=50),
    ncpus=st.integers(1, 8),
    schedule=st.sampled_from(SCHEDULES),
)
def test_work_conservation_and_non_overlap(costs, ncpus, schedule):
    """Property: (1) total busy time across CPUs equals the sum of task
    costs (no work lost or duplicated); (2) tasks on the same CPU never
    overlap — each CPU is a serial resource."""
    res = simulate(costs, parse_schedule(schedule), ncpus, model=ZERO)
    busy = sum(e.end - e.start for e in res.timeline)
    assert busy == pytest.approx(sum(costs))
    by_cpu: dict[int, list] = {}
    for e in res.timeline:
        by_cpu.setdefault(e.cpu, []).append(e)
    for evs in by_cpu.values():
        evs.sort(key=lambda e: e.start)
        for a, b in zip(evs, evs[1:]):
            assert a.end <= b.start + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    costs=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=50),
    ncpus=st.integers(1, 8),
    schedule=st.sampled_from(SCHEDULES),
)
def test_makespan_bracketed_by_work_bounds(costs, ncpus, schedule):
    """Property: total/ncpus <= makespan <= total (zero overheads) — and
    the closed-form fast path sits inside the same bracket."""
    from repro.sched.simulator import simulate_makespan

    policy = parse_schedule(schedule)
    total = sum(costs)
    fast = simulate_makespan(costs, policy, ncpus, model=ZERO)
    full = simulate(costs, policy, ncpus, model=ZERO).makespan
    for makespan in (fast, full):
        assert total / ncpus - 1e-9 <= makespan <= total + 1e-9


@settings(max_examples=12, deadline=None)
@given(
    kernel_variant=st.sampled_from([
        ("mandel", "omp_tiled"), ("heat", "omp_tiled"), ("sandpile", "omp_tiled"),
    ]),
    nthreads=st.integers(1, 6),
    schedule=st.sampled_from(SCHEDULES),
)
def test_fastpath_is_invisible(kernel_variant, nthreads, schedule):
    """Property: for any (kernel, team, schedule), the perf-mode fast
    path produces bit-identical images and virtual clocks to the
    reference per-tile path."""
    kernel, variant = kernel_variant
    cfg = dict(kernel=kernel, variant=variant, nthreads=nthreads,
               schedule=schedule, iterations=2)
    fast = run(make_config(**cfg))
    ref = run(make_config(fastpath="off", **cfg))
    assert fast.fastpath_regions > 0
    assert ref.fastpath_regions == 0
    assert fast.virtual_time == ref.virtual_time  # exact
    assert np.array_equal(fast.image, ref.image)
