"""Tests for the compiled (numba) tile-body tier and the
schedule-result memo.

numba is an *optional* dependency: most of these tests run the real
fallback path (and must pass without numba installed — CI has a leg
proving exactly that).  The compiled-path plumbing is tested by
substituting :func:`repro.core.jit._compile` with the identity, so the
"compiled" body is the same interpreted core the real njit would wrap —
the dispatch, caching, tier reporting and differential machinery are
exercised for real, without the dependency.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, config_from_args, parse_args_strict
from repro.core import jit
from repro.core.engine import run
from repro.errors import ConfigError
from repro.expt.replay import WorkProfileCache
from tests.conftest import make_config


@pytest.fixture
def forced_jit(monkeypatch):
    """Make the jit tier resolvable without numba: the "compiler" is
    the identity, so compiled bodies are the interpreted cores."""
    jit.reset()
    monkeypatch.setattr(jit, "_PROBE", jit.JitCapability(True, "forced (test)", "0"))
    monkeypatch.setattr(jit, "_compile", lambda core: core)
    yield
    jit.reset()


@pytest.fixture
def no_numba(monkeypatch):
    """Force the probe to report numba as unavailable."""
    jit.reset()
    monkeypatch.setattr(
        jit, "_PROBE", jit.JitCapability(False, "numba unavailable (test)", "")
    )
    yield
    jit.reset()


# ---------------------------------------------------------------------------
# probe / resolve / tier selection
# ---------------------------------------------------------------------------

class TestProbe:
    def test_probe_reports_numba_availability(self):
        jit.reset()
        cap = jit.probe()
        assert isinstance(cap.available, bool)
        # the reason names the dependency either way (CI asserts on it)
        assert cap.available or "numba" in cap.reason

    def test_probe_is_cached(self):
        jit.reset()
        assert jit.probe() is jit.probe()

    def test_refresh_reprobes(self):
        first = jit.probe()
        assert jit.probe(refresh=True) == first

    def test_reset_clears_compiled_bodies(self, forced_jit):
        fn, _ = jit.compiled_body("mandel")
        assert fn is not None
        jit.reset()
        assert not jit._COMPILED


class TestJitEnabled:
    def test_config_off_wins(self):
        cfg = make_config(jit="off")
        enabled, reason = jit.jit_enabled(cfg)
        assert not enabled and "--no-jit" in reason

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv(jit.NO_JIT_ENV, "1")
        enabled, reason = jit.jit_enabled(make_config())
        assert not enabled and jit.NO_JIT_ENV in reason

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(jit.NO_JIT_ENV, raising=False)
        enabled, _ = jit.jit_enabled(make_config())
        assert enabled


class TestResolve:
    def test_no_numba_resolves_to_fallback(self, no_numba):
        core, reason = jit.resolve(make_config())
        assert core is None
        assert "numba" in reason

    def test_forced_resolves_to_core(self, forced_jit):
        core, _ = jit.resolve(make_config())
        assert core is jit.JIT_BODIES["mandel"].core

    def test_unknown_kernel_has_no_body(self, forced_jit):
        core, reason = jit.resolve(make_config(kernel="spin", variant="seq"))
        assert core is None
        assert "no JIT body" in reason

    def test_compile_failure_is_cached_not_fatal(self, monkeypatch):
        jit.reset()
        calls = []

        def broken(core):
            calls.append(core)
            raise RuntimeError("typing error")

        monkeypatch.setattr(
            jit, "_PROBE", jit.JitCapability(True, "forced (test)", "0")
        )
        monkeypatch.setattr(jit, "_compile", broken)
        fn, reason = jit.compiled_body("mandel")
        assert fn is None and "typing error" in reason
        fn2, _ = jit.compiled_body("mandel")
        assert fn2 is None
        assert len(calls) == 1  # the failure is cached too
        jit.reset()

    def test_smoke_failure_rejects_body(self, monkeypatch):
        jit.reset()
        monkeypatch.setattr(
            jit, "_PROBE", jit.JitCapability(True, "forced (test)", "0")
        )
        # a "compiler" that returns a wrong-answer body: the post-compile
        # smoke test must reject it and fall back
        monkeypatch.setattr(jit, "_compile", lambda core: (lambda *a: 0))
        fn, _reason = jit.compiled_body("life")
        assert fn is None
        jit.reset()


class TestSelectTier:
    def test_sim_defaults_to_fastpath(self):
        tier, _ = jit.select_tier(make_config())
        assert tier == "fastpath"

    def test_fastpath_off_without_numba(self, no_numba):
        tier, reason = jit.select_tier(make_config(fastpath="off"))
        assert tier == "interpreted"
        assert "numba" in reason

    def test_fastpath_off_with_jit(self, forced_jit):
        tier, _ = jit.select_tier(make_config(fastpath="off"))
        assert tier == "jit"

    def test_monitoring_declines_fastpath(self, forced_jit):
        tier, _ = jit.select_tier(make_config(monitoring=True))
        assert tier == "jit"

    def test_real_backend_never_fastpath(self, no_numba):
        tier, _ = jit.select_tier(make_config(backend="threads"))
        assert tier == "interpreted"


# ---------------------------------------------------------------------------
# config / CLI plumbing
# ---------------------------------------------------------------------------

class TestConfigAndCli:
    def test_default_is_auto(self):
        assert make_config().jit == "auto"

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigError):
            make_config(jit="maybe")

    def test_no_jit_flag(self):
        parser = build_parser()
        args = parse_args_strict(["-k", "mandel", "--no-jit"], parser)
        assert config_from_args(args).jit == "off"

    def test_flag_absent_means_auto(self):
        parser = build_parser()
        args = parse_args_strict(["-k", "mandel"], parser)
        assert config_from_args(args).jit == "auto"


# ---------------------------------------------------------------------------
# differential: jit tier vs interpreted tier, bit-identical
# ---------------------------------------------------------------------------

#: kernels with a registered compiled body; omp_tiled exercises the
#: per-tile path on all of them
DIFF_KERNELS = sorted(jit.JIT_BODIES)


class TestDifferential:
    @pytest.mark.parametrize("kernel", DIFF_KERNELS)
    def test_jit_matches_interpreted_bitwise(self, kernel, forced_jit):
        """The compiled body must be bit-identical to the reference:
        same image bytes, same virtual clock, for every jit kernel."""
        base = make_config(
            kernel=kernel, variant="omp_tiled", dim=32, tile_w=8, tile_h=8,
            iterations=2, fastpath="off",
        )
        jit_res = run(base)
        ref_res = run(base.with_(jit="off"))
        assert jit_res.jit_tier == "jit"
        assert ref_res.jit_tier == "interpreted"
        assert np.array_equal(jit_res.image, ref_res.image)
        assert jit_res.virtual_time == ref_res.virtual_time

    def test_fastpath_run_reports_fastpath(self):
        res = run(make_config(iterations=1))
        assert res.jit_tier == "fastpath"

    def test_no_jit_env_forces_fallback(self, forced_jit, monkeypatch):
        monkeypatch.setenv(jit.NO_JIT_ENV, "1")
        res = run(make_config(iterations=1, fastpath="off"))
        assert res.jit_tier == "interpreted"


# ---------------------------------------------------------------------------
# the schedule-result memo
# ---------------------------------------------------------------------------

class TestMemo:
    def test_hit_equals_fresh_replay(self):
        cfg = make_config(iterations=2)
        cache = WorkProfileCache()
        first = cache.simulate(cfg)
        assert cache.last_memo == "miss"
        again = cache.simulate(cfg)
        assert cache.last_memo == "hit"
        fresh = WorkProfileCache(memoize=False).simulate(cfg)
        assert first == again == fresh
        assert cache.counters == {"memo_hits": 1, "memo_misses": 1}

    def test_memoize_off_never_counts(self):
        cfg = make_config(iterations=1)
        cache = WorkProfileCache(memoize=False)
        cache.simulate(cfg)
        cache.simulate(cfg)
        assert cache.last_memo == ""
        assert cache.counters == {"memo_hits": 0, "memo_misses": 0}

    def test_distinct_points_do_not_collide(self):
        cache = WorkProfileCache()
        base = make_config(iterations=1)
        t2 = cache.simulate(base.with_(nthreads=2))
        t8 = cache.simulate(base.with_(nthreads=8))
        assert cache.counters["memo_misses"] == 2
        assert t2 != t8  # different thread counts really were replayed

    def test_memo_persists_across_instances(self, tmp_path):
        cfg = make_config(iterations=2, schedule="nonmonotonic:dynamic")
        first = WorkProfileCache(cache_dir=tmp_path)
        t1 = first.simulate(cfg)
        warm = WorkProfileCache(cache_dir=tmp_path)
        t2 = warm.simulate(cfg)
        assert warm.counters == {"memo_hits": 1, "memo_misses": 0}
        assert t1 == t2

    def test_corrupt_memo_file_recomputes(self, tmp_path):
        cfg = make_config(iterations=1)
        cache = WorkProfileCache(cache_dir=tmp_path)
        expected = cache.simulate(cfg)
        for memo_file in tmp_path.glob("memo-*.pkl"):
            memo_file.write_bytes(b"garbage")
        cold = WorkProfileCache(cache_dir=tmp_path)
        assert cold.simulate(cfg) == expected
        assert cold.counters["memo_misses"] == 1

    def test_workload_key_includes_tier(self, forced_jit):
        off = make_config(fastpath="off")
        assert WorkProfileCache.tier_of(off) == "jit"
        assert WorkProfileCache.workload_key(off) != \
            WorkProfileCache.workload_key(off.with_(jit="off"))

    def test_tier_of_ignores_instrumentation(self):
        # capture always runs uninstrumented, so the key must too
        cfg = make_config()
        assert WorkProfileCache.tier_of(cfg) == \
            WorkProfileCache.tier_of(cfg.with_(monitoring=True))


@settings(max_examples=12, deadline=None)
@given(
    nthreads=st.integers(min_value=1, max_value=6),
    schedule=st.sampled_from([
        "static", "dynamic", "dynamic,3", "guided",
        "nonmonotonic:dynamic", "nonmonotonic:dynamic,2",
    ]),
    run_index=st.integers(min_value=0, max_value=2),
)
def test_memoized_equals_fresh_for_every_schedule(nthreads, schedule, run_index):
    """Property: for every schedule family — including work stealing,
    which perf mode now replays closed-form — the memoized elapsed time
    equals a fresh replay of the same point, exactly."""
    cfg = make_config(
        dim=32, tile_w=8, tile_h=8, iterations=1,
        nthreads=nthreads, schedule=schedule, run_index=run_index,
    )
    memo_cache = WorkProfileCache()
    first = memo_cache.simulate(cfg)
    hit = memo_cache.simulate(cfg)
    fresh = WorkProfileCache(memoize=False).simulate(cfg)
    assert first == hit == fresh
    assert memo_cache.counters["memo_hits"] >= 1
