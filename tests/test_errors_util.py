"""Tests for the error hierarchy and util helpers."""

import time

import pytest

from repro import errors
from repro.util.rng import DEFAULT_SEED, derive_rng, make_rng
from repro.util.timing import Stopwatch, format_duration
from repro.util.validation import check_positive, check_power_of_two, check_range


class TestErrors:
    def test_hierarchy(self):
        for exc in [
            errors.ConfigError,
            errors.KernelError,
            errors.UnknownKernelError("x"),
            errors.UnknownVariantError("k", "v"),
            errors.ScheduleError,
            errors.SimulationError,
            errors.DependencyError,
            errors.MpiError,
            errors.TraceError,
            errors.PlotError,
        ]:
            instance = exc if isinstance(exc, Exception) else exc("msg")
            assert isinstance(instance, errors.EasypapError)

    def test_unknown_kernel_suggests(self):
        e = errors.UnknownKernelError("foo", ["mandel", "blur"])
        assert "blur, mandel" in str(e)

    def test_unknown_variant_mentions_both(self):
        e = errors.UnknownVariantError("mandel", "bogus", ["seq"])
        assert "mandel" in str(e) and "bogus" in str(e) and "seq" in str(e)


class TestTiming:
    def test_format_duration(self):
        assert format_duration(0.579) == "579.000 ms"
        assert format_duration(0.000012) == "12.000 us"
        assert format_duration(0.0) == "0.000 ms"
        assert format_duration(1.5) == "1500.000 ms"

    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        lap = sw.stop()
        assert lap >= 0.009
        assert sw.elapsed == pytest.approx(sum(sw.laps))

    def test_stopwatch_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004
        assert not sw.running

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0 and sw.laps == []


class TestRng:
    def test_default_seed_reproducible(self):
        assert make_rng().integers(0, 100) == make_rng(DEFAULT_SEED).integers(0, 100)

    def test_explicit_seed(self):
        assert make_rng(7).random() == make_rng(7).random()
        assert make_rng(7).random() != make_rng(8).random()

    def test_derive_rng_independent_streams(self):
        a = derive_rng(make_rng(1), 0, "rank")
        b = derive_rng(make_rng(1), 1, "rank")
        assert a.random() != b.random()

    def test_derive_rng_deterministic(self):
        a = derive_rng(make_rng(1), 3).random()
        b = derive_rng(make_rng(1), 3).random()
        assert a == b


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(errors.ConfigError, match="x"):
            check_positive("x", 0)

    def test_check_range(self):
        check_range("y", 5, 0, 10)
        with pytest.raises(errors.ConfigError):
            check_range("y", 11, 0, 10)

    def test_check_power_of_two(self):
        check_power_of_two("z", 16)
        for bad in (0, -4, 3, 12):
            with pytest.raises(errors.ConfigError):
                check_power_of_two("z", bad)
