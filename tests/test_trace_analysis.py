"""Tests for EASYVIEW analysis: Gantt, coverage, comparison, stats."""

import pytest

from repro.core.engine import run
from repro.trace.compare import TraceComparison, match_tiles
from repro.trace.coverage import coverage_counts, coverage_mask, locality_score, mean_spread
from repro.trace.events import Trace, TraceEvent, TraceMeta
from repro.trace.gantt import GanttChart
from repro.trace.stats import (
    DurationStats,
    duration_stats,
    iteration_spans,
    per_cpu_busy,
    task_imbalance,
)
from tests.conftest import make_config


def ev(it=1, cpu=0, start=0.0, end=1.0, **kw):
    return TraceEvent(iteration=it, cpu=cpu, start=start, end=end, **kw)


def traced_run(**kw):
    base = dict(kernel="mandel", variant="omp_tiled", dim=64, tile_w=16,
                tile_h=16, iterations=3, nthreads=4, trace=True)
    base.update(kw)
    return run(make_config(**base))


class TestGantt:
    def test_lanes_and_span(self):
        t = Trace(TraceMeta(ncpus=2), [ev(cpu=0, start=0, end=1),
                                       ev(cpu=1, start=0.5, end=2)])
        g = GanttChart(t)
        assert g.span == pytest.approx(2.0)
        lanes = g.lanes()
        assert len(lanes[0]) == 1 and len(lanes[1]) == 1

    def test_iteration_range_selection(self):
        r = traced_run()
        g_all = GanttChart(r.trace)
        g_one = GanttChart(r.trace, 2, 2)
        assert len(g_one.events) < len(g_all.events)
        assert {e.iteration for e in g_one.events} == {2}

    def test_tasks_at_time_vertical_mouse(self):
        t = Trace(TraceMeta(ncpus=2), [ev(cpu=0, start=0, end=1, x=0, y=0, w=4, h=4),
                                       ev(cpu=1, start=0.5, end=2, x=4, y=0, w=4, h=4)])
        g = GanttChart(t)
        hits = g.tasks_at_time(0.75)
        assert len(hits) == 2
        assert len(g.tasks_at_time(1.5)) == 1
        assert g.tiles_at_time(0.75) == [(0, 0, 4, 4), (4, 0, 4, 4)]

    def test_task_at_horizontal_mouse(self):
        t = Trace(TraceMeta(ncpus=1), [ev(start=0, end=1), ev(start=2, end=3)])
        g = GanttChart(t)
        assert g.task_at(0, 0.5).end == 1
        assert g.task_at(0, 1.5) is None

    def test_ascii_render(self):
        r = traced_run()
        text = GanttChart(r.trace).to_ascii(width=40)
        lines = text.splitlines()
        assert len([ln for ln in lines if ln.startswith("CPU")]) == 4
        assert "#" in text

    def test_empty_ascii(self):
        assert "empty" in GanttChart(Trace()).to_ascii()

    def test_svg_contains_tasks_and_tooltips(self):
        r = traced_run()
        svg = GanttChart(r.trace).to_svg().tostring()
        assert svg.count("<rect") > len(r.trace.events)  # tasks + lanes
        assert "<title>" in svg and "tile(" in svg
        assert "mandel" in svg


class TestCoverage:
    def test_mask_covers_cpu_tiles(self):
        r = traced_run(nthreads=2)
        m0 = coverage_mask(r.trace, 0, 64)
        m1 = coverage_mask(r.trace, 1, 64)
        assert (m0 | m1).all()  # two CPUs covered everything together

    def test_counts_sum_to_iterations(self):
        r = traced_run(iterations=3)
        counts = coverage_counts(r.trace, 64)
        assert counts.sum(axis=0).min() == 3
        assert counts.sum(axis=0).max() == 3

    def test_static_more_local_than_dynamic(self):
        """The Fig. 10 locality observation, quantified."""
        stat = traced_run(schedule="static", dim=128, iterations=4)
        dyn = traced_run(schedule="dynamic", dim=128, iterations=4)
        assert locality_score(stat.trace) < locality_score(dyn.trace)

    def test_mean_spread_zero_for_single_tile(self):
        t = Trace(TraceMeta(ncpus=1, dim=64),
                  [ev(x=0, y=0, w=16, h=16)])
        assert mean_spread(t, 0) == 0.0

    def test_spread_empty_cpu(self):
        t = Trace(TraceMeta(ncpus=2, dim=64), [ev(cpu=0, x=0, y=0, w=4, h=4)])
        assert mean_spread(t, 1) == 0.0


class TestStats:
    def test_duration_stats_values(self):
        s = DurationStats.of([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.total == 10.0
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.vmin == 1.0 and s.vmax == 4.0

    def test_empty_stats(self):
        s = DurationStats.of([])
        assert s.count == 0 and s.total == 0.0

    def test_kind_filter(self):
        t = Trace(TraceMeta(), [ev(kind="tile"), ev(kind="ghost", start=0, end=5)])
        assert duration_stats(t, kind="tile").count == 1
        assert duration_stats(t, kind=None).count == 2

    def test_iteration_spans(self):
        t = Trace(TraceMeta(), [ev(it=1, start=0, end=2), ev(it=1, start=1, end=3),
                                ev(it=2, start=3, end=4)])
        spans = iteration_spans(t)
        assert spans == {1: 3.0, 2: 1.0}

    def test_per_cpu_busy_and_imbalance(self):
        t = Trace(TraceMeta(ncpus=2), [ev(cpu=0, start=0, end=3), ev(cpu=1, start=0, end=1)])
        assert per_cpu_busy(t) == [3.0, 1.0]
        assert task_imbalance(t) == pytest.approx(1.5)


class TestComparison:
    def _pair(self):
        basic = run(make_config(kernel="blur", variant="omp_tiled", dim=64,
                                tile_w=8, tile_h=8, iterations=2, nthreads=4,
                                trace=True))
        opt = run(make_config(kernel="blur", variant="omp_tiled_opt", dim=64,
                              tile_w=8, tile_h=8, iterations=2, nthreads=4,
                              trace=True))
        return basic.trace, opt.trace

    def test_match_tiles_pairs_by_rectangle(self):
        a, b = self._pair()
        pairs = match_tiles(a, b, 1)
        assert len(pairs) == 64
        assert all(
            (ea.x, ea.y, ea.w, ea.h) == (eb.x, eb.y, eb.w, eb.h) for ea, eb in pairs
        )

    def test_overall_factor_matches_fig10(self):
        a, b = self._pair()
        cmp_ = TraceComparison(a, b)
        assert 1.8 < cmp_.overall_factor() < 4.5

    def test_inner_tiles_8x_faster(self):
        a, b = self._pair()
        cmp_ = TraceComparison(a, b)
        frac = cmp_.faster_tile_fraction(7.5)
        # 6x6 inner tiles out of 8x8 grid
        assert frac == pytest.approx(36 / 64, abs=0.05)

    def test_speedup_quantiles_ordered(self):
        a, b = self._pair()
        med, p90 = TraceComparison(a, b).speedup_quantiles()
        assert p90 >= med > 1.0

    def test_report_mentions_key_numbers(self):
        a, b = self._pair()
        text = TraceComparison(a, b).report()
        assert "overall speedup" in text and "per-tile speedup" in text

    def test_comparison_svg(self):
        a, b = self._pair()
        svg = TraceComparison(a, b).to_svg().tostring()
        assert svg.count("<svg") >= 3  # container + two stacked charts
