"""Tests for the kernel/variant registry."""

import pytest

from repro.core.kernel import Kernel, get_kernel, list_kernels, register_kernel, variant
from repro.errors import KernelError, UnknownKernelError, UnknownVariantError


class TestRegistry:
    def test_builtin_kernels_registered(self):
        names = list_kernels()
        for expected in ["mandel", "blur", "life", "cc", "invert", "transpose",
                         "pixelize", "sandpile", "none"]:
            assert expected in names

    def test_unknown_kernel(self):
        with pytest.raises(UnknownKernelError) as ei:
            get_kernel("nope")
        assert "mandel" in str(ei.value)  # helpful suggestion list

    def test_unknown_variant(self):
        k = get_kernel("mandel")
        with pytest.raises(UnknownVariantError) as ei:
            k.compute_fn("gpu_magic")
        assert "omp_tiled" in str(ei.value)

    def test_variant_lookup_is_bound(self):
        k = get_kernel("mandel")
        fn = k.compute_fn("seq")
        assert callable(fn)
        assert getattr(fn, "__self__", None) is k

    def test_fresh_instance_per_get(self):
        assert get_kernel("mandel") is not get_kernel("mandel")

    def test_variant_names_sorted(self):
        k = get_kernel("blur")
        names = k.variant_names()
        assert names == sorted(names)
        assert "omp_tiled_opt" in names


class TestRegistration:
    def test_variant_decorator_collects(self):
        class MyKernel(Kernel):
            name = "my_test_kernel_x"

            @variant("v1")
            def compute_v1(self, ctx, n):
                return 0

        assert "v1" in MyKernel.variants

    def test_inherited_variants(self):
        class Base(Kernel):
            name = "base_x"

            @variant("common")
            def compute_common(self, ctx, n):
                return 0

        class Child(Base):
            name = "child_x"

            @variant("extra")
            def compute_extra(self, ctx, n):
                return 0

        assert set(Child.variants) >= {"common", "extra"}

    def test_register_requires_name(self):
        class Nameless(Kernel):
            pass

        with pytest.raises(KernelError):
            register_kernel(Nameless)

    def test_register_requires_kernel_subclass(self):
        with pytest.raises(KernelError):
            register_kernel(object)  # type: ignore[arg-type]

    def test_duplicate_name_rejected(self):
        class Dup(Kernel):
            name = "mandel"

        with pytest.raises(KernelError):
            register_kernel(Dup)

    def test_override_in_subclass_wins(self):
        class A(Kernel):
            name = "a_x"

            @variant("v")
            def compute_v(self, ctx, n):
                return 1

        class B(A):
            name = "b_x"

            @variant("v")
            def compute_v2(self, ctx, n):
                return 2

        assert B.variants["v"] is B.__dict__["compute_v2"]
