"""Fault injection for the distributed sweep fabric.

The contract under fire: a sweep interrupted under the ``socket``
executor — a worker SIGKILLed mid-job, the master killed mid-sweep —
resumes to a complete, duplicate-free csvdb under any executor.

The deterministic half drives the wire protocol directly (a saboteur
connection that takes a job and dies, a hung worker that takes a job
and goes silent); the subprocess half (``@pytest.mark.slow``) kills
real worker/master processes with SIGKILL, exactly as a cluster would
lose them.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.expt.csvdb import read_rows
from repro.expt.executors import SocketExecutor, run_worker
from repro.expt.executors.protocol import (
    JOB,
    REQUEST_JOB,
    recv_message,
    send_message,
)
from repro.expt.exptools import execute, point_key
from tests.test_executor_equivalence import spawn_worker

REPO_ROOT = Path(__file__).resolve().parent.parent

GRID_ICVS = {"OMP_NUM_THREADS=": [2, 4]}
GRID_OPTS = {
    "--kernel ": ["mandel"],
    "--variant ": ["omp_tiled"],
    "--size ": [64],
    "--grain ": [16],
    "--iterations ": [2],
}


def in_thread_worker(port: int) -> threading.Thread:
    """A real worker loop on a thread of this process (cheap, and the
    point execution path is identical to a subprocess worker's)."""
    t = threading.Thread(
        target=run_worker, args=("127.0.0.1", port),
        kwargs={"connect_wait": 30.0}, daemon=True,
    )
    t.start()
    return t


def run_sweep(ex: SocketExecutor, csv_path, runs: int = 2, **kw) -> list[dict]:
    return execute("easypap", GRID_ICVS, GRID_OPTS, runs=runs,
                   csv_path=csv_path, executor=ex, **kw)


def assert_complete(csv_path, expected_points: int) -> list[dict]:
    rows = read_rows(csv_path)
    ok = [r for r in rows if r["status"] == "ok"]
    keys = [point_key(r) for r in ok]
    assert len(set(keys)) == expected_points, (len(set(keys)), expected_points)
    assert len(keys) == len(set(keys)), "duplicate csv rows"
    return rows


class TestWorkerDeath:
    def test_worker_eof_mid_job_is_requeued_and_sweep_completes(self, tmp_path):
        """A saboteur takes a job and drops the connection; the job
        must be re-dispatched to a surviving worker."""
        ex = SocketExecutor(lease_timeout=60.0)
        port = ex.address[1]
        got_job = threading.Event()

        def saboteur():
            deadline = time.monotonic() + 15
            while True:  # the master accepts only once drain starts
                try:
                    s = socket.create_connection(("127.0.0.1", port), timeout=2)
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        return
                    time.sleep(0.05)
            with s:
                send_message(s, REQUEST_JOB, {"worker_id": "saboteur"})
                mtype, _payload = recv_message(s)
                assert mtype == JOB
                got_job.set()
                # die with the job leased: EOF reaches the master

        sab = threading.Thread(target=saboteur, daemon=True)
        sab.start()

        def honest_when_sabotaged():
            assert got_job.wait(timeout=30)
            in_thread_worker(port)

        starter = threading.Thread(target=honest_when_sabotaged, daemon=True)
        starter.start()

        rows = run_sweep(ex, tmp_path / "perf.csv")
        sab.join(timeout=10)
        starter.join(timeout=10)

        assert len(rows) == 4 and all(r["status"] == "ok" for r in rows)
        assert ex.counters["jobs_requeued"] >= 1
        assert ex.counters["worker_disconnects"] >= 1
        assert_complete(tmp_path / "perf.csv", 4)

    def test_hung_worker_lease_expires_and_job_is_requeued(self, tmp_path):
        """A worker that takes a job and goes silent (no EOF — e.g. a
        partitioned host) is fenced by the lease timeout."""
        ex = SocketExecutor(lease_timeout=1.0)
        port = ex.address[1]
        got_job = threading.Event()
        release = threading.Event()

        def hung():
            deadline = time.monotonic() + 15
            while True:
                try:
                    s = socket.create_connection(("127.0.0.1", port), timeout=2)
                    break
                except OSError:
                    if time.monotonic() > deadline:
                        return
                    time.sleep(0.05)
            with s:
                send_message(s, REQUEST_JOB, {"worker_id": "hung"})
                mtype, _payload = recv_message(s)
                assert mtype == JOB
                got_job.set()
                release.wait(timeout=60)  # hold the lease, say nothing

        t = threading.Thread(target=hung, daemon=True)
        t.start()

        def honest_when_hung():
            assert got_job.wait(timeout=30)
            in_thread_worker(port)

        starter = threading.Thread(target=honest_when_hung, daemon=True)
        starter.start()

        rows = run_sweep(ex, tmp_path / "perf.csv")
        release.set()
        t.join(timeout=10)
        starter.join(timeout=10)

        assert len(rows) == 4 and all(r["status"] == "ok" for r in rows)
        assert ex.counters["jobs_requeued"] >= 1
        assert_complete(tmp_path / "perf.csv", 4)

    def test_repeated_worker_death_becomes_error_row_not_livelock(self, tmp_path):
        """Requeues are bounded: a job whose every worker dies is
        recorded as status=error instead of looping forever."""
        ex = SocketExecutor(lease_timeout=60.0, max_requeues=1)
        port = ex.address[1]

        def killer_workers():
            deaths = 0
            deadline = time.monotonic() + 60
            # keep taking jobs and dying until the master gives up on
            # all of them (max_requeues=1 -> 2 deaths per job)
            while deaths < 8 and time.monotonic() < deadline:
                try:
                    s = socket.create_connection(("127.0.0.1", port), timeout=2)
                except OSError:
                    time.sleep(0.05)
                    continue
                with s:
                    try:
                        send_message(s, REQUEST_JOB, {"worker_id": f"k{deaths}"})
                        msg = recv_message(s)
                    except OSError:
                        return
                    if msg is None or msg[0] != JOB:
                        return
                deaths += 1

        t = threading.Thread(target=killer_workers, daemon=True)
        t.start()
        rows = run_sweep(ex, tmp_path / "perf.csv", runs=1)
        t.join(timeout=30)

        assert len(rows) == 2
        assert all(r["status"] == "error" for r in rows)
        assert all("gave up" in r["error"] for r in rows)
        assert all(r["executor"] == "socket" for r in rows)
        # error rows do not block a later resume: a healthy pass
        # re-runs them to completion under another executor
        redone = execute("easypap", GRID_ICVS, GRID_OPTS, runs=1,
                         csv_path=tmp_path / "perf.csv", resume=True,
                         executor="serial")
        assert len(redone) == 2 and all(r["status"] == "ok" for r in redone)
        assert_complete(tmp_path / "perf.csv", 2)


class TestShutdown:
    def test_worker_connecting_after_no_more_jobs_exits_cleanly(self):
        """While the master lingers after the grid resolved, a late
        worker gets NO_MORE_JOBS; after the master is gone, it gets
        connection-refused.  Both are clean exit 0."""
        ex = SocketExecutor(linger=10.0)
        ex.configure(ex.options)
        port = ex.address[1]
        drained: list = []
        t = threading.Thread(target=lambda: drained.extend(ex.drain()),
                             daemon=True)
        t.start()  # zero jobs: the grid is resolved immediately
        try:
            assert run_worker("127.0.0.1", port, connect_wait=5.0) == 0
        finally:
            ex.close()
            t.join(timeout=10)
        assert drained == []

    def test_worker_with_no_master_exits_cleanly(self):
        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            dead_port = s.getsockname()[1]
        # nothing listens on dead_port anymore
        assert run_worker("127.0.0.1", dead_port, connect_wait=0.3) == 0


SLOW_OPTS = {
    "--kernel ": ["mandel"],
    "--variant ": ["omp_tiled"],
    "--size ": [512],
    "--grain ": [16],
    "--iterations ": [16],  # ~0.7s of wall per job: a wide kill window
}


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


@pytest.mark.slow
class TestProcessKill:
    def test_sigkill_worker_mid_job_sweep_still_completes(self, tmp_path):
        """Master + 2 localhost worker processes; one is SIGKILLed
        while it provably holds a lease.  The job is requeued to the
        survivor and the sweep completes without duplicates."""
        ex = SocketExecutor(lease_timeout=120.0)
        port = ex.address[1]
        workers = [spawn_worker(port), spawn_worker(port)]
        victim = workers[0]

        killed = threading.Event()

        def kill_when_leased():
            deadline = time.monotonic() + 120
            suffix = f"-{victim.pid}"
            while time.monotonic() < deadline:
                with ex._lock:
                    leased = any(
                        lease.worker_id.endswith(suffix)
                        for lease in ex._leases.values()
                    )
                if leased:
                    victim.kill()  # SIGKILL, mid-job by construction
                    killed.set()
                    return
                time.sleep(0.01)

        killer = threading.Thread(target=kill_when_leased, daemon=True)
        killer.start()
        try:
            rows = execute("easypap", {"OMP_NUM_THREADS=": [2, 4]}, SLOW_OPTS,
                           runs=3, csv_path=tmp_path / "perf.csv", executor=ex)
        finally:
            for w in workers:
                if w.poll() is None and not (w is victim and killed.is_set()):
                    w.wait(timeout=60)
        killer.join(timeout=10)

        assert killed.is_set(), "victim never held a lease"
        assert victim.wait(timeout=10) != 0  # SIGKILLed, not graceful
        assert workers[1].wait(timeout=60) == 0
        assert len(rows) == 6 and all(r["status"] == "ok" for r in rows)
        assert ex.counters["jobs_requeued"] >= 1
        assert ex.counters["worker_disconnects"] >= 1
        assert_complete(tmp_path / "perf.csv", 6)

    def test_sigkill_master_then_resume_completes_without_duplicates(self, tmp_path):
        """The master dies mid-sweep; every row it recorded survives,
        the worker exits cleanly, and resuming — under a *different*
        executor — finishes exactly the missing points."""
        csv = tmp_path / "perf.csv"
        port = _free_port()
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
        master = subprocess.Popen(
            [sys.executable, "-m", "repro.expt",
             "-k", "mandel", "-v", "omp_tiled", "-s", "512", "-g", "16",
             "-i", "16", "--threads", "2,4", "--schedule", "static",
             "--runs", "3", "--executor", "socket",
             "--bind", f"127.0.0.1:{port}", "--csv", str(csv), "-q"],
            env=env, cwd=REPO_ROOT, start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        worker = spawn_worker(port)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if csv.exists() and len(csv.read_text().splitlines()) >= 3:
                    break  # header + >= 2 recorded points
                if master.poll() is not None:
                    break
                time.sleep(0.05)
            if master.poll() is None:
                os.killpg(master.pid, signal.SIGKILL)
            master.wait(timeout=30)
        finally:
            if master.poll() is None:  # pragma: no cover - cleanup
                os.killpg(master.pid, signal.SIGKILL)

        # orphaned worker notices the dead master and exits cleanly
        assert worker.wait(timeout=60) == 0

        survivors = read_rows(csv)
        assert len({point_key(r) for r in survivors}) == len(survivors)

        redone = execute(
            "easypap", {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static"]},
            SLOW_OPTS, runs=3, csv_path=csv, resume=True, workers=2,
            executor="local-procs",
        )
        rows = assert_complete(csv, 6)  # 2 thread counts x 3 runs
        assert len(redone) <= 6
        # provenance shows the handoff once both executors contributed
        if redone:
            assert {r["executor"] for r in rows} >= {"local-procs"}
