"""Tests for the mandel kernel: math, work model, variant equivalence."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.kernels.mandel import DEFAULT_MAX_ITER, mandel_counts
from tests.conftest import make_config


class TestMandelCounts:
    def test_known_interior_point(self):
        # c = 0 is in the set: never escapes
        counts, _ = mandel_counts(np.array([[0.0]]), np.array([[0.0]]), 100)
        assert counts[0, 0] == 100

    def test_known_exterior_point(self):
        # c = 2 + 0i escapes immediately (|z1| = 2, |z2| = 6 > 2)
        counts, _ = mandel_counts(np.array([[2.0]]), np.array([[0.0]]), 100)
        assert counts[0, 0] <= 2

    def test_period_2_bulb_member(self):
        counts, _ = mandel_counts(np.array([[-1.0]]), np.array([[0.0]]), 200)
        assert counts[0, 0] == 200

    def test_work_equals_sum_of_active_iterations(self):
        cr = np.array([[0.0, 2.0]])
        ci = np.array([[0.0, 0.0]])
        counts, work = mandel_counts(cr, ci, 50)
        # work >= iterations actually spent; interior point spends all 50
        assert work >= 50
        assert work <= 2 * 50

    def test_work_deterministic(self):
        rng = np.random.default_rng(0)
        cr = rng.uniform(-2, 1, (8, 8))
        ci = rng.uniform(-1.5, 1.5, (8, 8))
        w1 = mandel_counts(cr, ci, 64)[1]
        w2 = mandel_counts(cr, ci, 64)[1]
        assert w1 == w2

    def test_broadcasting(self):
        counts, _ = mandel_counts(np.zeros((1, 4)), np.zeros((3, 1)), 10)
        assert counts.shape == (3, 4)


class TestVariants:
    @pytest.mark.parametrize("v", ["tiled", "omp", "omp_tiled", "ocl"])
    def test_equivalent_to_seq(self, v):
        cfg = dict(kernel="mandel", dim=64, tile_w=16, tile_h=16, iterations=2)
        ref = run(make_config(variant="seq", **cfg))
        got = run(make_config(variant=v, **cfg))
        assert np.array_equal(ref.image, got.image), f"variant {v} diverges"

    def test_zoom_changes_image_between_iterations(self):
        one = run(make_config(kernel="mandel", variant="seq", iterations=1))
        two = run(make_config(kernel="mandel", variant="seq", iterations=2))
        assert not np.array_equal(one.image, two.image)

    def test_max_iter_from_arg(self):
        r = run(make_config(kernel="mandel", variant="seq", arg="32", iterations=1))
        assert r.context.data["max_iter"] == 32
        d = run(make_config(kernel="mandel", variant="seq", iterations=1))
        assert d.context.data["max_iter"] == DEFAULT_MAX_ITER

    def test_bad_arg_falls_back_to_default(self):
        r = run(make_config(kernel="mandel", variant="seq", arg="huge", iterations=1))
        assert r.context.data["max_iter"] == DEFAULT_MAX_ITER

    def test_set_pixels_are_black(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", dim=64,
                            iterations=1, arg="64"))
        # the viewport contains the set: some pixels must be pure black
        black = (r.image >> 8) == 0
        assert black.any()
        assert not black.all()


class TestLoadImbalance:
    """The pedagogical core: mandel under static scheduling is imbalanced."""

    def test_static_is_imbalanced_dynamic_is_not(self):
        cfg = dict(kernel="mandel", variant="omp_tiled", dim=128, tile_w=16,
                   tile_h=16, iterations=2, nthreads=4, monitoring=True)
        stat = run(make_config(schedule="static", **cfg))
        dyn = run(make_config(schedule="dynamic", **cfg))
        assert stat.monitor.load_imbalance() > 1.5
        assert dyn.monitor.load_imbalance() < 1.2

    def test_dynamic_beats_static(self):
        cfg = dict(kernel="mandel", variant="omp_tiled", dim=128, tile_w=16,
                   tile_h=16, iterations=2, nthreads=4)
        stat = run(make_config(schedule="static", **cfg))
        dyn = run(make_config(schedule="dynamic", **cfg))
        assert dyn.virtual_time < stat.virtual_time

    def test_tile_costs_reflect_set_membership(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", dim=128,
                            tile_w=16, tile_h=16, iterations=1, nthreads=4,
                            monitoring=True))
        heat = r.monitor.records[0].heat
        assert heat.max() > 4 * heat.min()  # strong cost heterogeneity
