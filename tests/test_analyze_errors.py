"""Error-path coverage for the analysis CLIs: every malformed-input
branch of the trace loader must surface as a clean diagnostic + nonzero
exit, never a traceback."""

import json

import pytest

from repro.easyview_cli import main as easyview_main
from repro.errors import TraceError
from repro.trace.format import load_trace

HEADER = {
    "easypap_trace": 1,
    "meta": {
        "kernel": "mandel", "variant": "omp_tiled", "dim": 32,
        "tile_w": 8, "tile_h": 8, "ncpus": 4, "schedule": "static",
        "iterations": 1, "label": "cur", "machine": "virtual", "extra": {},
    },
    "nevents": 1,
}
EVENT = {
    "iteration": 1, "cpu": 0, "start": 0.0, "end": 1e-6,
    "x": 0, "y": 0, "w": 8, "h": 8, "kind": "tile", "extra": {},
}


def _write(path, *lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    return str(path)


class TestTraceLoaderErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="trace file not found"):
            load_trace(tmp_path / "nope.evt")

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.evt"
        p.write_text("", encoding="utf-8")
        with pytest.raises(TraceError, match="empty trace file"):
            load_trace(p)

    def test_bad_header_json(self, tmp_path):
        p = tmp_path / "bad.evt"
        _write(p, "this is not json")
        with pytest.raises(TraceError, match="bad trace header"):
            load_trace(p)

    def test_unsupported_version(self, tmp_path):
        p = tmp_path / "vfuture.evt"
        header = dict(HEADER, easypap_trace=99)
        _write(p, json.dumps(header), json.dumps(EVENT))
        with pytest.raises(TraceError, match="unsupported trace version"):
            load_trace(p)

    def test_bad_event_line_reports_lineno(self, tmp_path):
        p = tmp_path / "badevent.evt"
        _write(p, json.dumps(HEADER), "{broken json")
        with pytest.raises(TraceError, match=r"bad trace event at .*:2"):
            load_trace(p)

    def test_truncated_event_stream(self, tmp_path):
        p = tmp_path / "trunc.evt"
        header = dict(HEADER, nevents=5)
        _write(p, json.dumps(header), json.dumps(EVENT))
        with pytest.raises(TraceError, match="truncated trace"):
            load_trace(p)


class TestEasyviewErrorPaths:
    def test_missing_trace_file(self, tmp_path, capsys):
        rc = easyview_main([str(tmp_path / "nope.evt")])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("easyview:")
        assert "trace file not found" in err

    def test_malformed_trace_file(self, tmp_path, capsys):
        p = tmp_path / "garbage.evt"
        p.write_text("not a trace\n", encoding="utf-8")
        rc = easyview_main([str(p)])
        assert rc == 1
        assert "bad trace header" in capsys.readouterr().err

    def test_races_on_footprint_free_trace(self, tmp_path, capsys):
        p = tmp_path / "nofp.evt"
        _write(p, json.dumps(HEADER), json.dumps(EVENT))
        rc = easyview_main([str(p), "--races"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no footprints" in out

    def test_load_missing_module_is_usage_error(self, tmp_path, capsys):
        p = tmp_path / "t.evt"
        _write(p, json.dumps(HEADER), json.dumps(EVENT))
        rc = easyview_main([str(p), "--load", str(tmp_path / "nope.py")])
        assert rc == 2
        assert "easyview:" in capsys.readouterr().err
