"""Tests for RunConfig validation and derived values."""

import pytest

from repro.core.config import RunConfig
from repro.errors import ConfigError, ScheduleError
from repro.sched.policies import DynamicSchedule


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = RunConfig()
        assert cfg.dim == 256 and cfg.tile_w == 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dim=0),
            dict(tile_w=0),
            dict(tile_h=-1),
            dict(dim=16, tile_w=32),
            dict(iterations=0),
            dict(nthreads=0),
            dict(backend="cuda"),
            dict(mpi_np=-1),
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigError):
            RunConfig(**kwargs)

    def test_bad_schedule_rejected_at_construction(self):
        with pytest.raises(ScheduleError):
            RunConfig(schedule="wat")


class TestDerived:
    def test_policy(self):
        cfg = RunConfig(schedule="dynamic,2")
        p = cfg.policy()
        assert isinstance(p, DynamicSchedule) and p.chunk == 2

    def test_grain_alias(self):
        assert RunConfig(tile_w=16, tile_h=16).grain == 16

    def test_with_returns_modified_copy(self):
        a = RunConfig(dim=64, tile_w=16, tile_h=16)
        b = a.with_(nthreads=8)
        assert b.nthreads == 8 and a.nthreads != 8 or a.nthreads == 4
        assert b.dim == 64
        assert a is not b

    def test_with_validates(self):
        with pytest.raises(ConfigError):
            RunConfig(dim=64, tile_w=16, tile_h=16).with_(dim=8)

    def test_csv_row_contents(self):
        row = RunConfig(kernel="mandel", variant="omp", dim=128, tile_w=8,
                        tile_h=8, nthreads=6, schedule="guided").csv_row()
        assert row["kernel"] == "mandel"
        assert row["threads"] == 6
        assert row["schedule"] == "guided"
        assert row["dim"] == 128

    def test_label_mentions_key_params(self):
        label = RunConfig(kernel="life", variant="lazy", dim=64, tile_w=16,
                          tile_h=16, mpi_np=2).label()
        assert "kernel=life" in label and "np=2" in label
