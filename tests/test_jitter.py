"""Tests for the system-noise (jitter) model."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.errors import ConfigError
from repro.expt.replay import WorkProfileCache
from repro.sched.costmodel import perturb
from repro.util.rng import make_jitter_rng
from tests.conftest import make_config


class TestPerturb:
    def test_zero_sigma_is_identity(self):
        rng = make_jitter_rng(0)
        costs = [1.0, 2.0, 3.0]
        assert perturb(costs, rng, 0.0) == costs

    def test_noise_is_multiplicative_and_positive(self):
        rng = make_jitter_rng(0)
        costs = perturb([1.0] * 1000, rng, 0.1)
        assert all(c > 0 for c in costs)
        assert np.mean(costs) == pytest.approx(1.0, abs=0.02)
        assert np.std(costs) == pytest.approx(0.1, abs=0.02)

    def test_floor_at_5_percent(self):
        rng = make_jitter_rng(0)
        costs = perturb([1.0] * 200, rng, 10.0)  # absurd sigma
        assert min(costs) >= 0.05

    def test_stream_depends_on_run_index(self):
        a = perturb([1.0] * 4, make_jitter_rng(5, 0), 0.1)
        b = perturb([1.0] * 4, make_jitter_rng(5, 1), 0.1)
        c = perturb([1.0] * 4, make_jitter_rng(5, 0), 0.1)
        assert a == c
        assert a != b

    def test_empty(self):
        assert perturb([], make_jitter_rng(0), 0.1) == []


class TestJitteredRuns:
    def _run(self, run_index=0, jitter=0.05, **kw):
        return run(make_config(kernel="mandel", variant="omp_tiled",
                               iterations=2, jitter=jitter,
                               run_index=run_index, **kw))

    def test_repetitions_differ(self):
        times = {self._run(run_index=i).virtual_time for i in range(4)}
        assert len(times) == 4

    def test_each_repetition_reproducible(self):
        assert self._run(run_index=2).virtual_time == \
            self._run(run_index=2).virtual_time

    def test_noise_does_not_change_results(self):
        clean = run(make_config(kernel="mandel", variant="omp_tiled", iterations=2))
        noisy = self._run()
        assert np.array_equal(clean.image, noisy.image)

    def test_noise_magnitude_reasonable(self):
        clean = run(make_config(kernel="mandel", variant="omp_tiled",
                                iterations=2)).virtual_time
        noisy = self._run().virtual_time
        assert abs(noisy - clean) / clean < 0.25

    def test_task_regions_jittered(self):
        a = run(make_config(kernel="cc", variant="omp_task", iterations=4,
                            jitter=0.05, run_index=0)).virtual_time
        b = run(make_config(kernel="cc", variant="omp_task", iterations=4,
                            jitter=0.05, run_index=1)).virtual_time
        assert a != b

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigError):
            make_config(jitter=-0.1)

    def test_replay_matches_jittered_run_exactly(self):
        cache = WorkProfileCache()
        for rep in range(3):
            cfg = make_config(kernel="mandel", variant="omp_tiled",
                              iterations=2, jitter=0.05, run_index=rep,
                              nthreads=3)
            assert cache.simulate(cfg) == pytest.approx(run(cfg).virtual_time)

    def test_exptools_runs_produce_error_bars(self, tmp_path):
        from repro.expt.exptools import execute
        from repro.expt.easyplot import build_plot

        csv = tmp_path / "p.csv"
        execute(
            "easypap",
            {"OMP_NUM_THREADS=": [2, 4]},
            {"--kernel ": ["mandel"], "--variant ": ["omp_tiled"],
             "--size ": [64], "--grain ": [16], "--iterations ": [2],
             "--jitter ": [0.05]},
            runs=4, csv_path=csv, reuse_work=True,
        )
        from repro.expt.csvdb import read_rows

        spec = build_plot(read_rows(csv), x="threads")
        series = spec.facets[0].series[0]
        assert all(e > 0 for e in series.yerr)  # real error bars now
