"""Golden-trace regression tests.

The ``.evt`` fixtures under ``tests/fixtures/`` are byte-exact
recordings of deterministic runs (see ``tools/make_golden_traces.py``).
Two independent properties are pinned:

1. **Engine determinism** — re-running the pinned configuration today
   must reproduce the committed file byte for byte.  This catches any
   change to the simulator's event ordering, tie-breaking, float
   arithmetic or the trace writer itself.
2. **Format round-trip** — decoding a fixture and re-encoding it must
   also be byte-identical, so the ``.evt`` reader/writer pair is
   lossless and stable.

If a change intentionally alters scheduling or the format, regenerate
with ``PYTHONPATH=src python tools/make_golden_traces.py`` and commit
the diff — the point is that such changes are visible in review.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.trace.format import load_trace, save_trace

TOOLS_DIR = Path(__file__).resolve().parent.parent / "tools"
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

sys.path.insert(0, str(TOOLS_DIR))
from make_golden_traces import GOLDEN_CONFIGS, golden_trace  # noqa: E402

NAMES = sorted(GOLDEN_CONFIGS)


@pytest.mark.parametrize("name", NAMES)
def test_fixture_exists(name):
    assert (FIXTURE_DIR / f"{name}.evt").is_file(), (
        f"missing golden fixture {name}.evt — run tools/make_golden_traces.py"
    )


@pytest.mark.parametrize("name", NAMES)
def test_regenerated_trace_is_byte_identical(name, tmp_path):
    """Running the pinned config must reproduce the fixture exactly."""
    fresh = tmp_path / f"{name}.evt"
    save_trace(golden_trace(name), fresh)
    expected = (FIXTURE_DIR / f"{name}.evt").read_bytes()
    assert fresh.read_bytes() == expected, (
        f"golden trace {name} drifted — if the scheduling change is "
        "intentional, regenerate fixtures with tools/make_golden_traces.py"
    )


@pytest.mark.parametrize("name", NAMES)
def test_decode_encode_round_trip(name, tmp_path):
    """load -> save must be lossless down to the last byte."""
    src = FIXTURE_DIR / f"{name}.evt"
    trace = load_trace(src)
    out = tmp_path / "roundtrip.evt"
    save_trace(trace, out)
    assert out.read_bytes() == src.read_bytes()


@pytest.mark.parametrize("name", NAMES)
def test_fixture_content_sanity(name):
    """Fixtures describe real schedules: validated, non-empty, in-bounds."""
    trace = load_trace(FIXTURE_DIR / f"{name}.evt")
    cfg = GOLDEN_CONFIGS[name]
    assert len(trace.events) > 0
    assert trace.meta.kernel == cfg["kernel"]
    assert trace.meta.variant == cfg["variant"]
    cpus = {e.cpu for e in trace.events}
    assert cpus <= set(range(cfg["nthreads"]))
    for e in trace.events:
        assert e.start <= e.end
        assert 1 <= e.iteration <= cfg["iterations"]  # iterations are 1-based
