"""Tests for the grading harness."""

import sys
from pathlib import Path

import pytest

from repro.core.kernel import Kernel, _KERNELS, register_kernel, variant
from repro.errors import UnknownVariantError
from repro.expt.grading import grade_variant


@pytest.fixture
def buggy_kernel():
    """A kernel whose parallel variant is wrong only on edge tiles and
    does no early parallel work (slow)."""

    @register_kernel
    class GradeProbe(Kernel):
        name = "grade_probe"

        def do_tile(self, ctx, t):
            x, y, w, h = t.as_rect()
            ctx.img.cur_view(y, x, h, w)[:] += 1
            return t.area * 50.0  # heavy enough that overheads don't dominate

        @variant("seq")
        def compute_seq(self, ctx, nb_iter):
            for _ in ctx.iterations(nb_iter):
                ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            return 0

        @variant("good")
        def compute_good(self, ctx, nb_iter):
            for _ in ctx.iterations(nb_iter):
                ctx.parallel_for(lambda t: self.do_tile(ctx, t))
            return 0

        @variant("wrong")
        def compute_wrong(self, ctx, nb_iter):
            for _ in ctx.iterations(nb_iter):
                ctx.parallel_for(lambda t: self.do_tile(ctx, t))
                ctx.img.cur[0, 0] += 1  # corrupt one pixel
            return 0

        @variant("serial")
        def compute_serial(self, ctx, nb_iter):
            # "parallel" variant that never uses the team
            for _ in ctx.iterations(nb_iter):
                ctx.sequential_for(lambda t: self.do_tile(ctx, t))
            return 0

    yield GradeProbe
    del _KERNELS["grade_probe"]


class TestGradeVariant:
    def test_good_variant_passes_everything(self, buggy_kernel):
        report = grade_variant("grade_probe", "good", dims=(16, 24, 32),
                               tile=8, threads=(2, 4),
                               min_speedup_per_thread=0.8)
        assert report.all_passed, report.summary()
        assert report.speedups[4] > 3.5

    def test_wrong_variant_fails_correctness(self, buggy_kernel):
        report = grade_variant("grade_probe", "wrong", dims=(16, 24, 32),
                               tile=8, threads=(2,))
        failing = [c for c in report.checks if not c.passed]
        assert any("correct" in c.name for c in failing)
        assert any("differing pixels" in c.detail for c in failing)

    def test_serial_variant_fails_speedup(self, buggy_kernel):
        report = grade_variant("grade_probe", "serial", dims=(16, 24, 32),
                               tile=8, threads=(4,))
        speed_checks = [c for c in report.checks if "speedup" in c.name]
        assert speed_checks and not any(c.passed for c in speed_checks)
        # but it is *correct*
        assert all(c.passed for c in report.checks if "correct" in c.name)

    def test_unknown_variant_raises(self):
        with pytest.raises(UnknownVariantError):
            grade_variant("mandel", "nope")

    def test_report_summary_format(self, buggy_kernel):
        report = grade_variant("grade_probe", "good", dims=(16, 24, 32),
                               tile=8, threads=(2,))
        text = report.summary()
        assert "grading grade_probe/good" in text
        assert "[PASS]" in text
        assert "speedups:" in text


class TestGradeCli:
    def test_cli_pass(self, capsys):
        sys.path.insert(0, str(Path(__file__).parent.parent / "tools"))
        try:
            import grade

            rc = grade.main(["-k", "spin", "-v", "omp_tiled", "--tile", "8"])
        finally:
            sys.path.pop(0)
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "checks passed" in out
