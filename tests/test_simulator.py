"""Tests for the event-driven loop-scheduling simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sched.costmodel import CostModel
from repro.sched.policies import (
    DynamicSchedule,
    GuidedSchedule,
    NonMonotonicDynamic,
    StaticSchedule,
)
from repro.sched.simulator import simulate, simulate_makespan

ZERO = CostModel(seconds_per_unit=1.0, dispatch_overhead=0.0,
                 steal_overhead=0.0, fork_join_overhead=0.0)

ALL_POLICIES = [
    StaticSchedule(),
    StaticSchedule(2),
    DynamicSchedule(1),
    DynamicSchedule(3),
    GuidedSchedule(1),
    GuidedSchedule(2),
    NonMonotonicDynamic(1),
    NonMonotonicDynamic(2),
    NonMonotonicDynamic(1, steal_half=True),
    NonMonotonicDynamic(3, steal_half=True),
]


class TestBasics:
    def test_single_cpu_is_sequential(self):
        res = simulate([1.0, 2.0, 3.0], DynamicSchedule(1), 1, model=ZERO)
        assert res.makespan == pytest.approx(6.0)
        assert all(e.cpu == 0 for e in res.timeline)

    def test_uniform_costs_perfect_balance(self):
        res = simulate([1.0] * 8, StaticSchedule(), 4, model=ZERO)
        assert res.makespan == pytest.approx(2.0)
        assert res.timeline.busy_per_cpu() == pytest.approx([2.0] * 4)

    def test_items_attached(self):
        items = ["a", "b", "c"]
        res = simulate([1, 1, 1], DynamicSchedule(1), 2, items=items, model=ZERO)
        assert {e.item for e in res.timeline} == set(items)

    def test_item_count_mismatch(self):
        with pytest.raises(SimulationError):
            simulate([1, 2], DynamicSchedule(1), 2, items=["x"], model=ZERO)

    def test_zero_cpus_rejected(self):
        with pytest.raises(SimulationError):
            simulate([1.0], DynamicSchedule(1), 0, model=ZERO)

    def test_meta_propagated(self):
        res = simulate([1.0], StaticSchedule(), 1, model=ZERO, meta={"iteration": 7})
        assert res.timeline.execs[0].meta["iteration"] == 7

    def test_start_time_offsets_everything(self):
        res = simulate([1.0, 1.0], DynamicSchedule(1), 2, model=ZERO, start_time=5.0)
        assert all(e.start >= 5.0 for e in res.timeline)


class TestStaticBehaviour:
    def test_imbalanced_costs_hurt_static(self):
        # one heavy item at the front: static gives it to cpu 0 along with
        # the rest of its block
        costs = [10.0] + [1.0] * 7
        stat = simulate(costs, StaticSchedule(), 4, model=ZERO)
        dyn = simulate(costs, DynamicSchedule(1), 4, model=ZERO)
        assert stat.makespan > dyn.makespan

    def test_static_assignment_is_contiguous(self):
        res = simulate([1.0] * 12, StaticSchedule(), 3, model=ZERO)
        for cpu in range(3):
            idx = [e.meta["index"] for e in res.timeline if e.cpu == cpu]
            assert idx == list(range(min(idx), max(idx) + 1))


class TestDynamicBehaviour:
    def test_greedy_no_idle_while_work_remains(self):
        # 2 cpus, 4 unit tasks: both busy until the end
        res = simulate([1.0] * 4, DynamicSchedule(1), 2, model=ZERO)
        assert res.makespan == pytest.approx(2.0)

    def test_chunked_dispatch(self):
        res = simulate([1.0] * 6, DynamicSchedule(2), 2, model=ZERO)
        assert len(res.grabs) == 3
        assert all(g.size == 2 for g in res.grabs)

    def test_dispatch_overhead_counted(self):
        model = CostModel(1.0, dispatch_overhead=0.5, steal_overhead=0.0,
                          fork_join_overhead=0.0)
        res = simulate([1.0] * 4, DynamicSchedule(1), 1, model=model)
        # 4 chunks x (0.5 + 1.0)
        assert res.makespan == pytest.approx(6.0)

    def test_smaller_chunks_cost_more_overhead(self):
        model = CostModel(1.0, dispatch_overhead=0.2, steal_overhead=0.0,
                          fork_join_overhead=0.0)
        fine = simulate([1.0] * 32, DynamicSchedule(1), 2, model=model)
        coarse = simulate([1.0] * 32, DynamicSchedule(8), 2, model=model)
        assert fine.makespan > coarse.makespan


class TestGuidedBehaviour:
    def test_chunk_sizes_decrease(self):
        res = simulate([1.0] * 64, GuidedSchedule(1), 4, model=ZERO)
        sizes = res.chunk_sizes()
        assert sizes[0] == 8  # LLVM-style: ceil(remaining / (2 * ncpus))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))


class TestNonMonotonicBehaviour:
    def test_no_steals_when_balanced(self):
        res = simulate([1.0] * 8, NonMonotonicDynamic(1), 4, model=ZERO)
        assert res.steals == 0

    def test_steals_correct_imbalance(self):
        # cpu 0's block is heavy; others should steal from it
        costs = [5.0] * 4 + [0.1] * 12
        res = simulate(costs, NonMonotonicDynamic(1), 4, model=ZERO)
        assert res.steals > 0
        ideal = sum(costs) / 4
        assert res.makespan <= 2.5 * ideal

    def test_stolen_marked_in_meta(self):
        costs = [5.0] * 4 + [0.1] * 12
        res = simulate(costs, NonMonotonicDynamic(1), 4, model=ZERO)
        stolen = [e for e in res.timeline if e.meta.get("stolen")]
        assert stolen
        # stolen tasks come from the back of some victim's block
        assert all(e.meta["index"] not in range(0, 4) or e.cpu != 0 for e in stolen)

    def test_steal_half_mode(self):
        costs = [5.0] * 4 + [0.1] * 12
        half = simulate(costs, NonMonotonicDynamic(1, steal_half=True), 4, model=ZERO)
        one = simulate(costs, NonMonotonicDynamic(1), 4, model=ZERO)
        assert half.steals <= one.steals


@settings(max_examples=60, deadline=None)
@given(
    costs=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=60),
    ncpus=st.integers(min_value=1, max_value=8),
    policy_i=st.integers(min_value=0, max_value=len(ALL_POLICIES) - 1),
)
def test_every_policy_schedules_each_item_exactly_once(costs, ncpus, policy_i):
    """Property: completeness + timeline validity for every policy."""
    res = simulate(costs, ALL_POLICIES[policy_i], ncpus, model=ZERO)
    res.timeline.validate()
    indices = sorted(e.meta["index"] for e in res.timeline)
    assert indices == list(range(len(costs)))


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=60),
    ncpus=st.integers(min_value=1, max_value=8),
    policy_i=st.integers(min_value=0, max_value=len(ALL_POLICIES) - 1),
)
def test_makespan_bounds(costs, ncpus, policy_i):
    """Property: total_work/p <= makespan <= total_work (no overheads)."""
    res = simulate(costs, ALL_POLICIES[policy_i], ncpus, model=ZERO)
    total = sum(costs)
    assert res.makespan <= total + 1e-9
    assert res.makespan >= total / ncpus - 1e-9
    assert res.makespan >= max(costs) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=40),
    ncpus=st.integers(min_value=1, max_value=6),
)
def test_dynamic_is_greedy(costs, ncpus):
    """Property: under dynamic,1 with no overhead, a CPU is never idle
    while unstarted work exists (list-scheduling 2-approximation bound)."""
    res = simulate(costs, DynamicSchedule(1), ncpus, model=ZERO)
    opt_lb = max(sum(costs) / ncpus, max(costs))
    assert res.makespan <= 2.0 * opt_lb + 1e-9


# ---------------------------------------------------------------------------
# Closed-form fast path (simulate_makespan) vs the event loop
# ---------------------------------------------------------------------------

OVERHEAD_MODELS = [
    ZERO,
    CostModel(seconds_per_unit=1.0, dispatch_overhead=0.25,
              steal_overhead=0.5, fork_join_overhead=0.0),
    CostModel(seconds_per_unit=5e-9, dispatch_overhead=2.5e-7,
              steal_overhead=1.5e-6, fork_join_overhead=5e-6),  # default scale
]


@settings(max_examples=120, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=60
    ),
    ncpus=st.integers(min_value=1, max_value=8),
    policy_i=st.integers(min_value=0, max_value=len(ALL_POLICIES) - 1),
    model_i=st.integers(min_value=0, max_value=len(OVERHEAD_MODELS) - 1),
    start_time=st.sampled_from([0.0, 1.5, 123.456, 7e3]),
)
def test_closed_form_equals_event_loop_exactly(costs, ncpus, policy_i, model_i,
                                               start_time):
    """Property: the closed-form/queue-replay makespan is EXACTLY equal
    (``==``, not approx) to the event-driven simulation — the perf-mode
    fast path must not drift by a single ulp, or bit-identical virtual
    clocks across the two engine paths become impossible."""
    policy = ALL_POLICIES[policy_i]
    model = OVERHEAD_MODELS[model_i]
    full = simulate(costs, policy, ncpus, model=model, start_time=start_time)
    fast = simulate_makespan(costs, policy, ncpus, model=model,
                             start_time=start_time)
    expect = full.timeline.makespan if len(costs) else 0.0
    assert fast == expect


@settings(max_examples=40, deadline=None)
@given(
    costs=st.lists(
        st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
        min_size=1, max_size=80,
    ),
    ncpus=st.integers(min_value=1, max_value=8),
    policy_i=st.integers(min_value=0, max_value=len(ALL_POLICIES) - 1),
)
def test_closed_form_exact_across_magnitudes(costs, ncpus, policy_i):
    """Property: exactness survives mixed cost magnitudes (catastrophic
    ranges for naive summation reorderings)."""
    policy = ALL_POLICIES[policy_i]
    full = simulate(costs, policy, ncpus, model=ZERO)
    assert simulate_makespan(costs, policy, ncpus, model=ZERO) == \
        full.timeline.makespan


def test_closed_form_empty_costs():
    assert simulate_makespan([], StaticSchedule(), 4, model=ZERO) == 0.0


class TestStealingClosedForm:
    """The deterministic replay of work stealing (no heapq event loop)."""

    def test_direct_equality_with_overheads(self):
        from repro.sched.workstealing import stealing_makespan

        model = CostModel(seconds_per_unit=1.0, dispatch_overhead=0.25,
                          steal_overhead=0.5, fork_join_overhead=0.0)
        costs = [5.0] * 4 + [0.1] * 29 + [2.0] * 8
        for policy in (NonMonotonicDynamic(1), NonMonotonicDynamic(2),
                       NonMonotonicDynamic(1, steal_half=True)):
            for ncpus in (1, 2, 3, 7):
                full = simulate(costs, policy, ncpus, model=model,
                                start_time=3.25)
                fast = stealing_makespan(costs, policy, ncpus, model,
                                         start_time=3.25)
                assert fast == full.timeline.makespan

    def test_makespan_dispatch_avoids_event_loop(self, monkeypatch):
        """simulate_makespan must route stealing policies through the
        closed form — perf mode never pays for the heapq event loop."""
        import repro.sched.simulator as simulator

        def boom(*a, **k):  # pragma: no cover - would mean a regression
            raise AssertionError("perf mode entered the event loop")

        monkeypatch.setattr(simulator, "simulate_stealing", boom)
        got = simulate_makespan([1.0, 2.0, 3.0], NonMonotonicDynamic(1), 2,
                                model=ZERO)
        assert got == pytest.approx(3.0)


def test_closed_form_rejects_zero_cpus():
    with pytest.raises(SimulationError):
        simulate_makespan([1.0], StaticSchedule(), 0, model=ZERO)
