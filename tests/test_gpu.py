"""Tests for the SIMT device simulator (EXT2)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.device import DeviceSpec, GpuDevice, divergence_penalty
from repro.sched.costmodel import CostModel

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def device(**kw):
    spec = DeviceSpec(launch_overhead=0.0, lane_speedup=1.0, **kw)
    return GpuDevice(spec, model=ZERO)


class TestLaunch:
    def test_uniform_costs_no_divergence(self):
        d = device(num_cus=2)
        res = d.launch(np.full((8, 8), 3.0), group_w=4, group_h=4)
        assert res.divergence_penalty == pytest.approx(1.0)
        assert len(res.timeline) == 4  # 2x2 groups

    def test_lockstep_pays_worst_lane(self):
        d = device(num_cus=1)
        costs = np.ones((4, 4))
        costs[0, 0] = 100.0  # one divergent lane in the single group
        res = d.launch(costs, group_w=4, group_h=4)
        assert res.timeline.makespan == pytest.approx(100.0)
        assert res.divergence_penalty == pytest.approx(100.0 * 16 / 115.0)

    def test_divergence_penalty_function(self):
        assert divergence_penalty(np.array([1.0, 1.0])) == pytest.approx(1.0)
        assert divergence_penalty(np.array([1.0, 3.0])) == pytest.approx(1.5)
        assert divergence_penalty(np.zeros(4)) == 1.0

    def test_groups_dispatched_over_cus(self):
        d = device(num_cus=4)
        res = d.launch(np.ones((8, 8)), group_w=4, group_h=4)
        assert {e.cpu for e in res.timeline} == {0, 1, 2, 3}
        assert res.timeline.makespan == pytest.approx(1.0)  # all CUs in parallel

    def test_ndrange_divisibility_checked(self):
        with pytest.raises(ConfigError):
            device().launch(np.ones((10, 10)), group_w=4, group_h=4)

    def test_items_attached_in_group_order(self):
        d = device(num_cus=1)
        res = d.launch(np.ones((4, 8)), group_w=4, group_h=4,
                       items=["g0", "g1"])
        ordered = sorted(res.timeline, key=lambda e: e.start)
        assert [e.item for e in ordered] == ["g0", "g1"]

    def test_items_length_checked(self):
        with pytest.raises(ConfigError):
            device().launch(np.ones((4, 4)), group_w=4, group_h=4,
                            items=["a", "b"])

    def test_launch_overhead_and_lane_speedup(self):
        spec = DeviceSpec(num_cus=1, lane_speedup=2.0, launch_overhead=5.0)
        d = GpuDevice(spec, model=ZERO)
        res = d.launch(np.full((4, 4), 8.0), group_w=4, group_h=4)
        # 8 work units at half cost, after 5s launch overhead
        assert res.timeline.makespan == pytest.approx(5.0 + 4.0)

    def test_meta_tagged_gpu(self):
        res = device().launch(np.ones((4, 4)), group_w=4, group_h=4,
                              meta={"iteration": 2})
        e = res.timeline.execs[0]
        assert e.meta["device"] == "gpu" and e.meta["iteration"] == 2


class TestMandelOcl:
    def test_divergence_on_set_boundary(self):
        from repro.core.engine import run
        from tests.conftest import make_config

        r = run(make_config(kernel="mandel", variant="ocl", dim=64, tile_w=8,
                            tile_h=8, iterations=1))
        assert r.context.data["divergence"] > 1.2  # boundary tiles diverge

    def test_ocl_needs_divisible_tiles(self):
        from repro.core.engine import run
        from tests.conftest import make_config

        with pytest.raises(ValueError):
            run(make_config(kernel="mandel", variant="ocl", dim=60, tile_w=16,
                            tile_h=16, iterations=1))


class TestTransferModel:
    def test_transfer_time_accounted(self):
        d = device(num_cus=1)
        spec = d.spec
        res = d.launch(np.ones((4, 4)), group_w=4, group_h=4,
                       transfer_in_bytes=int(spec.bytes_per_second),
                       transfer_out_bytes=int(spec.bytes_per_second // 2))
        assert res.transfer_in_time == pytest.approx(1.0)
        assert res.transfer_out_time == pytest.approx(0.5)
        # input transfer delays the kernel; output extends the makespan
        assert res.timeline.execs[0].start >= 1.0
        assert res.makespan >= res.timeline.makespan + 0.5

    def test_transfer_fraction_bounds(self):
        d = device(num_cus=1)
        none = d.launch(np.ones((4, 4)), group_w=4, group_h=4)
        assert none.transfer_fraction == pytest.approx(0.0)

    def test_blur_is_transfer_bound_mandel_is_not(self):
        """The §V lesson our extension makes measurable: a memory-bound
        stencil wastes the bus; mandel amortizes it with compute."""
        from repro.core.engine import run
        from tests.conftest import make_config

        cfg = dict(dim=256, tile_w=16, tile_h=16, iterations=1, nthreads=8)
        blur = run(make_config(kernel="blur", variant="ocl", **cfg))
        mandel = run(make_config(kernel="mandel", variant="ocl", arg="1024",
                                 **cfg))
        bf = blur.context.data["transfer_fraction"]
        mf = mandel.context.data["transfer_fraction"]
        assert bf > 0.5  # the stencil spends most of the launch on the bus
        assert mf < bf / 1.5  # heavy compute amortizes the same transfers

    def test_blur_ocl_matches_seq(self):
        import numpy as np
        from repro.core.engine import run
        from tests.conftest import make_config

        cfg = dict(kernel="blur", dim=24, tile_w=8, tile_h=8, iterations=2,
                   seed=7)
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="ocl", **cfg))
        assert np.array_equal(a.image, b.image)
