"""Tests for the .evt trace file format."""

import json

import pytest

from repro.errors import TraceError
from repro.trace.events import Trace, TraceEvent, TraceMeta
from repro.trace.format import default_trace_path, load_trace, save_trace


def sample_trace(n=5):
    meta = TraceMeta(kernel="mandel", variant="omp_tiled", dim=64, tile_w=16,
                     tile_h=16, ncpus=2, schedule="dynamic", iterations=2)
    events = [
        TraceEvent(iteration=1 + i // 3, cpu=i % 2, start=float(i),
                   end=i + 0.5, x=i * 16 % 64, y=0, w=16, h=16,
                   extra={"index": i})
        for i in range(n)
    ]
    return Trace(meta, events)


class TestRoundtrip:
    def test_save_load_identity(self, tmp_path):
        t = sample_trace()
        p = save_trace(t, tmp_path / "t.evt")
        loaded = load_trace(p)
        assert loaded.meta == t.meta
        assert loaded.events == t.events

    def test_empty_trace(self, tmp_path):
        t = Trace(TraceMeta(kernel="none"))
        loaded = load_trace(save_trace(t, tmp_path / "e.evt"))
        assert len(loaded) == 0
        assert loaded.meta.kernel == "none"

    def test_parent_dirs_created(self, tmp_path):
        p = save_trace(sample_trace(), tmp_path / "a" / "b" / "t.evt")
        assert p.exists()

    def test_default_trace_path(self):
        p = default_trace_path(label="prev")
        assert p.name == "ezv_trace_prev.evt"


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "nope.evt")

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.evt"
        p.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(p)

    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.evt"
        p.write_text("not json\n")
        with pytest.raises(TraceError, match="header"):
            load_trace(p)

    def test_wrong_version(self, tmp_path):
        p = tmp_path / "v.evt"
        p.write_text(json.dumps({"easypap_trace": 99, "meta": {}}) + "\n")
        with pytest.raises(TraceError, match="version"):
            load_trace(p)

    def test_bad_event_line_reports_lineno(self, tmp_path):
        p = save_trace(sample_trace(2), tmp_path / "t.evt")
        lines = p.read_text().splitlines()
        lines[2] = '{"broken": true'
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceError, match=":3"):
            load_trace(p)

    def test_truncation_detected(self, tmp_path):
        p = save_trace(sample_trace(4), tmp_path / "t.evt")
        lines = p.read_text().splitlines()
        p.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="truncated"):
            load_trace(p)

    def test_blank_lines_tolerated(self, tmp_path):
        p = save_trace(sample_trace(2), tmp_path / "t.evt")
        p.write_text(p.read_text().replace("\n", "\n\n", 1))
        loaded = load_trace(p)
        assert len(loaded) == 2


class TestForwardCompat:
    """Events written by newer versions may carry keys this reader does
    not know (the ``reads``/``writes`` footprint extension set the
    precedent); loading must skip them instead of failing."""

    def test_unknown_event_keys_ignored(self):
        d = sample_trace(1).events[0].to_dict()
        d["gpu_queue"] = 3  # hypothetical future fields
        d["spans"] = [[0.0, 1.0]]
        e = TraceEvent.from_dict(d)
        assert e.iteration == 1 and e.cpu == 0 and e.w == 16
        assert not hasattr(e, "gpu_queue")

    def test_unknown_keys_in_file(self, tmp_path):
        p = save_trace(sample_trace(2), tmp_path / "t.evt")
        lines = p.read_text().splitlines()
        evt = json.loads(lines[1])
        evt["future_field"] = {"nested": [1, 2, 3]}
        lines[1] = json.dumps(evt)
        p.write_text("\n".join(lines) + "\n")
        loaded = load_trace(p)
        assert len(loaded) == 2
        assert loaded.events[0].extra == {"index": 0}

    def test_footprints_roundtrip(self, tmp_path):
        events = [
            TraceEvent(
                iteration=1, cpu=0, start=0.0, end=1.0, x=0, y=0, w=16, h=16,
                reads=(("cur", 0, 0, 17, 17),),
                writes=(("next", 0, 0, 16, 16),),
            )
        ]
        t = Trace(TraceMeta(kernel="blur"), events)
        loaded = load_trace(save_trace(t, tmp_path / "f.evt"))
        assert loaded.events[0].reads == (("cur", 0, 0, 17, 17),)
        assert loaded.events[0].writes == (("next", 0, 0, 16, 16),)

    def test_empty_footprints_omitted_from_serialization(self):
        d = sample_trace(1).events[0].to_dict()
        assert "reads" not in d and "writes" not in d


class TestEngineIntegration:
    def test_engine_trace_roundtrips(self, tmp_path):
        from repro.core.engine import run
        from tests.conftest import make_config

        r = run(make_config(kernel="mandel", variant="omp_tiled", trace=True))
        p = save_trace(r.trace, tmp_path / "run.evt")
        loaded = load_trace(p)
        assert len(loaded) == len(r.trace)
        assert loaded.meta.kernel == "mandel"
        assert loaded.meta.schedule == "dynamic"
