"""A deliberately slow kernel (``--load``-style extension file).

Each tile sleeps for a fixed wall-clock delay, which gives the procs
backend tests a region long enough to SIGKILL a pool worker *while it is
computing* and assert that the master surfaces a clean ExecutionError
within a bounded time instead of hanging on a dead pipe.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.kernel import Kernel, register_kernel, variant
from repro.core.tiling import Tile

TILE_SLEEP = 0.2  # seconds of pure wall-clock per tile


@register_kernel
class SlowTilesKernel(Kernel):
    """Kernel ``slowtiles``: increments every pixel, slowly."""

    name = "slowtiles"

    def do_tile(self, ctx, tile: Tile) -> float:
        time.sleep(TILE_SLEEP)
        x, y, w, h = tile.as_rect()
        view = ctx.img.cur_view(y, x, h, w)
        view += np.uint32(1)
        return float(tile.area)

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self.do_tile))
        return 0
