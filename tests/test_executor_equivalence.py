"""Cross-executor equivalence: the sweep fabric must not change the
science.

The same grid run under ``serial``, ``local-procs`` and ``socket``
(workers as subprocesses on localhost) yields row-identical csvdbs
modulo the provenance columns — the simulator is deterministic, so
even ``time_us`` matches bit-for-bit.  A hypothesis property pins the
resume contract underneath: *any* interleaving of job completions,
under any executor mix, preserves the ``csv_row`` + run-index resume
identity.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expt.csvdb import append_rows, read_rows, strip_provenance
from repro.expt.executors import EXECUTOR_NAMES, SocketExecutor
from repro.expt.exptools import completed_points, execute, point_key, sweep_points

REPO_ROOT = Path(__file__).resolve().parent.parent

GRID_ICVS = {"OMP_NUM_THREADS=": [2, 4], "OMP_SCHEDULE=": ["static", "dynamic"]}
GRID_OPTS = {
    "--kernel ": ["mandel"],
    "--variant ": ["omp_tiled"],
    "--size ": [64],
    "--grain ": [16],
    "--iterations ": [2],
}
RUNS = 2  # 2 threads x 2 schedules x 2 runs = 8 points


def spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    """A ``python -m repro.expt worker`` subprocess against localhost."""
    env = dict(os.environ,
               PYTHONPATH="src" + os.pathsep + os.environ.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.expt", "worker",
         "--connect", f"127.0.0.1:{port}", "-q", *extra],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def canon(row: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in strip_provenance(row).items()))


class TestCrossExecutorEquivalence:
    def test_three_executors_yield_identical_rows(self, tmp_path):
        results: dict[str, list[tuple]] = {}

        rows = execute("easypap", GRID_ICVS, GRID_OPTS, runs=RUNS,
                       csv_path=tmp_path / "serial.csv", executor="serial")
        assert all(r["executor"] == "serial" for r in rows)
        results["serial"] = sorted(map(canon, rows))

        rows = execute("easypap", GRID_ICVS, GRID_OPTS, runs=RUNS,
                       csv_path=tmp_path / "procs.csv", workers=3,
                       executor="local-procs")
        assert all(r["executor"] == "local-procs" for r in rows)
        results["local-procs"] = sorted(map(canon, rows))

        ex = SocketExecutor(lease_timeout=120.0)
        workers = [spawn_worker(ex.address[1]), spawn_worker(ex.address[1])]
        try:
            rows = execute("easypap", GRID_ICVS, GRID_OPTS, runs=RUNS,
                           csv_path=tmp_path / "socket.csv", executor=ex)
        finally:
            exits = [w.wait(timeout=30) for w in workers]
        assert all(r["executor"] == "socket" for r in rows)
        assert all(r["worker_id"] for r in rows)
        # both workers received NO_MORE_JOBS and exited cleanly
        assert exits == [0, 0]
        results["socket"] = sorted(map(canon, rows))

        assert set(results) == set(EXECUTOR_NAMES)
        assert results["serial"] == results["local-procs"] == results["socket"]
        assert len(results["serial"]) == 8

        # ...and the csvdbs on disk agree too
        on_disk = {
            name: sorted(map(canon, read_rows(tmp_path / f"{name}.csv")))
            for name in ("serial", "procs", "socket")
        }
        assert on_disk["serial"] == on_disk["procs"] == on_disk["socket"]

    def test_sweep_started_under_socket_resumes_under_serial(self, tmp_path):
        """The resume identity survives executor changes: complete half
        the grid under socket, the rest under serial."""
        csv = tmp_path / "perf.csv"
        half_icvs = {"OMP_NUM_THREADS=": [2], "OMP_SCHEDULE=": ["static", "dynamic"]}
        ex = SocketExecutor(lease_timeout=120.0)
        worker = spawn_worker(ex.address[1])
        try:
            first = execute("easypap", half_icvs, GRID_OPTS, runs=RUNS,
                            csv_path=csv, executor=ex)
        finally:
            assert worker.wait(timeout=30) == 0
        assert len(first) == 4

        redone = execute("easypap", GRID_ICVS, GRID_OPTS, runs=RUNS,
                         csv_path=csv, resume=True, executor="serial")
        assert len(redone) == 4  # only the 4-thread half was missing
        assert all(r["threads"] == 4 for r in redone)
        rows = read_rows(csv)
        keys = [point_key(r) for r in rows]
        assert len(keys) == 8
        assert len(set(keys)) == 8  # zero duplicates across executors
        assert {r["executor"] for r in rows} == {"socket", "serial"}


class TestInterleavingProperty:
    """Hypothesis: whatever subset of the grid completes, in whatever
    order, recorded by whatever executor — ``completed_points`` +
    re-running the complement reconstructs exactly the full grid."""

    GRID = None  # built lazily; sweep_points parses argv per example otherwise

    @classmethod
    def grid(cls):
        if cls.GRID is None:
            cls.GRID = sweep_points(GRID_ICVS, GRID_OPTS, RUNS)
        return cls.GRID

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_any_completion_interleaving_preserves_resume_identity(self, data):
        points = self.grid()
        n = len(points)
        order = data.draw(st.permutations(range(n)))
        prefix = data.draw(st.integers(min_value=0, max_value=n))
        statuses = data.draw(st.lists(
            st.sampled_from(["ok", "error"]), min_size=prefix, max_size=prefix))
        executors = data.draw(st.lists(
            st.sampled_from(EXECUTOR_NAMES), min_size=prefix, max_size=prefix))

        with tempfile.TemporaryDirectory() as d:
            csv = Path(d) / "perf.csv"
            rows = []
            for idx, status, executor in zip(order[:prefix], statuses, executors):
                config, rep = points[idx]
                row = dict(config.csv_row())
                row.update(run=rep, machine="virtual", status=status,
                           executor=executor, worker_id=f"w{idx}")
                rows.append(row)
            if rows:
                append_rows(csv, rows)

            done = completed_points(csv)
            ok_idx = {i for i, s in zip(order[:prefix], statuses) if s == "ok"}
            expected = {
                point_key({**points[i][0].csv_row(), "run": points[i][1]})
                for i in ok_idx
            }
            # exactly the ok rows count as done, regardless of arrival
            # order or which executor produced them
            assert done == expected

            missing = [
                (c, r) for c, r in points
                if point_key({**c.csv_row(), "run": r}) not in done
            ]
            assert len(missing) == n - len(ok_idx)
            # done + missing partition the grid: nothing lost, nothing doubled
            missing_keys = {point_key({**c.csv_row(), "run": r}) for c, r in missing}
            assert not (missing_keys & done)
            assert len(missing_keys | done) == n
