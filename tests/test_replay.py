"""Tests for work-profile capture & replay."""

import pytest

from repro.core.engine import run
from repro.errors import ConfigError
from repro.expt.replay import WorkProfileCache, capture_log, replay_log
from tests.conftest import make_config


class TestCapture:
    def test_parallel_kernel_logs_par_regions(self):
        cfg = make_config(kernel="mandel", variant="omp_tiled", iterations=3)
        log, model = capture_log(cfg)
        pars = [e for e in log if e[0] == "par"]
        assert len(pars) == 3
        assert all(len(e[1]) == 16 for e in pars)  # 4x4 tiles

    def test_task_kernel_logs_dags(self):
        cfg = make_config(kernel="cc", variant="omp_task", iterations=4)
        log, _ = capture_log(cfg)
        dags = [e for e in log if e[0] == "dag"]
        assert dags
        works, preds = dags[0][1], dags[0][2]
        assert len(works) == len(preds) == 16

    def test_mpi_rejected(self):
        cfg = make_config(kernel="life", variant="mpi_omp", mpi_np=2)
        with pytest.raises(ConfigError):
            capture_log(cfg)


class TestReplay:
    @pytest.mark.parametrize("variant", ["omp_tiled", "tiled"])
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided",
                                          "nonmonotonic:dynamic"])
    def test_replay_equals_full_run(self, variant, schedule):
        base = make_config(kernel="mandel", variant=variant, iterations=2)
        cache = WorkProfileCache()
        for threads in (1, 3, 5):
            cfg = base.with_(nthreads=threads, schedule=schedule)
            assert cache.simulate(cfg) == pytest.approx(run(cfg).virtual_time)

    def test_replay_equals_full_run_for_tasks(self):
        base = make_config(kernel="cc", variant="omp_task", iterations=6)
        cache = WorkProfileCache()
        for threads in (2, 4):
            cfg = base.with_(nthreads=threads)
            assert cache.simulate(cfg) == pytest.approx(run(cfg).virtual_time)

    def test_cache_reused_across_configs(self):
        cache = WorkProfileCache()
        base = make_config(kernel="mandel", variant="omp_tiled")
        cache.simulate(base.with_(nthreads=2))
        cache.simulate(base.with_(nthreads=8, schedule="static"))
        assert len(cache._cache) == 1  # same workload key

    def test_different_workloads_not_conflated(self):
        cache = WorkProfileCache()
        base = make_config(kernel="mandel", variant="omp_tiled")
        cache.simulate(base)
        cache.simulate(base.with_(dim=32))
        assert len(cache._cache) == 2

    def test_unknown_entry_kind_rejected(self):
        from repro.sched.costmodel import DEFAULT_COST_MODEL
        from repro.sched.policies import parse_schedule

        with pytest.raises(ConfigError):
            replay_log([("bogus",)], nthreads=2,
                       policy=parse_schedule("dynamic"),
                       model=DEFAULT_COST_MODEL)
