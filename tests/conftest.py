"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.sched.costmodel import CostModel


@pytest.fixture(autouse=True)
def _deterministic_rng():
    """Pin the global RNGs before every test.

    Engine code only uses explicitly-seeded generators, but real-thread
    tests and hypothesis shrinking must not be perturbed by whatever
    global-RNG state a previously-run test left behind.
    """
    random.seed(0xEA57)
    np.random.seed(0xEA57)


def make_config(**kwargs) -> RunConfig:
    """A small, fast default configuration for kernel tests."""
    defaults = dict(
        kernel="mandel",
        variant="omp_tiled",
        dim=64,
        tile_w=16,
        tile_h=16,
        iterations=2,
        nthreads=4,
        schedule="dynamic",
        seed=42,
        # the deterministic threaded substrate; process-substrate tests
        # opt in explicitly (tests/test_mpi_substrate.py)
        mpi_backend="inproc",
    )
    defaults.update(kwargs)
    return RunConfig(**defaults)


@pytest.fixture
def config():
    return make_config()


@pytest.fixture
def zero_overhead_model():
    """Cost model without scheduling overheads (exact-arithmetic tests)."""
    return CostModel(
        seconds_per_unit=1.0,
        dispatch_overhead=0.0,
        steal_overhead=0.0,
        fork_join_overhead=0.0,
    )


@pytest.fixture
def unit_model():
    """1 work unit == 1 virtual second, small fixed overheads."""
    return CostModel(
        seconds_per_unit=1.0,
        dispatch_overhead=0.01,
        steal_overhead=0.05,
        fork_join_overhead=0.1,
    )
