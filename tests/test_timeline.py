"""Tests for the Timeline data model and its analysis helpers."""

import pytest

from repro.errors import SimulationError
from repro.sched.timeline import TaskExec, Timeline


def mk(item, cpu, start, end, **meta):
    return TaskExec(item, cpu, start, end, meta)


class TestBasics:
    def test_empty(self):
        tl = Timeline()
        assert tl.makespan == 0.0
        assert len(tl) == 0
        assert tl.busy_per_cpu() == []

    def test_ncpus_inferred(self):
        tl = Timeline([mk("a", 2, 0, 1)])
        assert tl.ncpus == 3

    def test_append_extends_ncpus(self):
        tl = Timeline(ncpus=1)
        tl.append(mk("a", 4, 0, 1))
        assert tl.ncpus == 5

    def test_makespan_and_busy(self):
        tl = Timeline([mk("a", 0, 0, 2), mk("b", 1, 0, 1), mk("c", 1, 1, 4)])
        assert tl.makespan == 4.0
        assert tl.busy_per_cpu() == [2.0, 4.0]
        assert tl.total_work() == 6.0

    def test_duration(self):
        assert mk("x", 0, 1.5, 4.0).duration == 2.5


class TestMetrics:
    def test_load_percent(self):
        tl = Timeline([mk("a", 0, 0, 4), mk("b", 1, 0, 2)], ncpus=2)
        assert tl.load_percent() == pytest.approx([100.0, 50.0])

    def test_load_percent_custom_span(self):
        tl = Timeline([mk("a", 0, 0, 2)], ncpus=1)
        assert tl.load_percent(span=8.0) == pytest.approx([25.0])

    def test_idle_and_cumulated_idleness(self):
        tl = Timeline([mk("a", 0, 0, 4), mk("b", 1, 0, 1)], ncpus=2)
        assert tl.idle_time() == pytest.approx([0.0, 3.0])
        assert tl.cumulated_idleness() == pytest.approx(3.0)

    def test_imbalance(self):
        balanced = Timeline([mk("a", 0, 0, 2), mk("b", 1, 0, 2)], ncpus=2)
        assert balanced.imbalance() == pytest.approx(1.0)
        skewed = Timeline([mk("a", 0, 0, 3), mk("b", 1, 0, 1)], ncpus=2)
        assert skewed.imbalance() == pytest.approx(1.5)

    def test_speedup_vs(self):
        tl = Timeline([mk("a", 0, 0, 2)], ncpus=1)
        assert tl.speedup_vs(8.0) == pytest.approx(4.0)


class TestStructure:
    def test_lanes_sorted(self):
        tl = Timeline([mk("b", 0, 2, 3), mk("a", 0, 0, 1), mk("c", 1, 0, 2)])
        lanes = tl.lanes()
        assert [e.item for e in lanes[0]] == ["a", "b"]
        assert [e.item for e in lanes[1]] == ["c"]

    def test_assignment(self):
        tl = Timeline([mk("a", 0, 0, 1), mk("b", 1, 0, 1)])
        assert tl.assignment() == {"a": 0, "b": 1}

    def test_items_of_cpu_execution_order(self):
        tl = Timeline([mk("late", 0, 5, 6), mk("early", 0, 0, 1)])
        assert tl.items_of_cpu(0) == ["early", "late"]

    def test_filtered(self):
        tl = Timeline([mk("a", 0, 0, 1, it=1), mk("b", 0, 1, 2, it=2)])
        sub = tl.filtered(lambda e: e.meta["it"] == 2)
        assert len(sub) == 1 and sub.execs[0].item == "b"

    def test_shifted(self):
        tl = Timeline([mk("a", 0, 1, 2)])
        sh = tl.shifted(10.0)
        assert sh.execs[0].start == 11.0 and sh.execs[0].end == 12.0
        # original untouched
        assert tl.execs[0].start == 1.0


class TestValidate:
    def test_valid_passes(self):
        tl = Timeline([mk("a", 0, 0, 1), mk("b", 0, 1, 2), mk("c", 1, 0.5, 1.5)])
        tl.validate()

    def test_overlap_on_same_cpu_rejected(self):
        tl = Timeline([mk("a", 0, 0, 2), mk("b", 0, 1, 3)])
        with pytest.raises(SimulationError):
            tl.validate()

    def test_negative_interval_rejected(self):
        tl = Timeline([mk("a", 0, 2, 1)])
        with pytest.raises(SimulationError):
            tl.validate()

    def test_negative_start_rejected(self):
        tl = Timeline([mk("a", 0, -1, 1)])
        with pytest.raises(SimulationError):
            tl.validate()

    def test_overlap_on_distinct_cpus_allowed(self):
        tl = Timeline([mk("a", 0, 0, 2), mk("b", 1, 0, 2)])
        tl.validate()
