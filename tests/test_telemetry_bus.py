"""The telemetry bus: event protocol, dispatch, lazy consumer attachment.

Covers the ISSUE-5 tentpole contract: per-producer sequence numbers,
region publication with footprint pairing, counter aggregation, and
the single-place fastpath-eligibility decision (consumers are attached
lazily; an uninstrumented run constructs neither Monitor nor
TraceRecorder).
"""

from __future__ import annotations

import pytest

from repro.core.access import Footprint
from repro.core.engine import run
from repro.sched.timeline import TaskExec, Timeline
from repro.telemetry import (
    MASTER_PRODUCER,
    AnnotationEvent,
    CounterEvent,
    IterationMarkEvent,
    TelemetryBus,
    TileExecEvent,
)
from tests.conftest import make_config


class Sink:
    """A consumer implementing every hook, recording what it sees."""

    def __init__(self):
        self.execs = []
        self.regions = []
        self.marks = []
        self.annos = []
        self.counts = []

    def on_tile_exec(self, ev):
        self.execs.append(ev)

    def on_region_end(self, tl):
        self.regions.append(tl)

    def on_iteration_mark(self, ev):
        self.marks.append(ev)

    def on_annotation(self, ev):
        self.annos.append(ev)

    def on_counter(self, ev):
        self.counts.append(ev)


def timeline_of(n: int, region: int = 0) -> Timeline:
    tl = Timeline(ncpus=2)
    for i in range(n):
        meta = {"iteration": 1, "kind": "tile", "index": i, "region": region}
        tl.append(TaskExec(f"item{i}", i % 2, float(i), float(i + 1), meta))
    return tl


class TestDispatch:
    def test_per_producer_sequence_numbers(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        bus.publish_region(timeline_of(3))
        bus.publish_region(timeline_of(2), producer=7)
        by_prod = {}
        for ev in sink.execs:
            by_prod.setdefault(ev.producer, []).append(ev.seq)
        assert by_prod[MASTER_PRODUCER] == [0, 1, 2]
        assert by_prod[7] == [0, 1]

    def test_sequences_interleave_independently(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        for producer in (0, 1, 0, 1, 0):
            bus.publish(TileExecEvent(exec=timeline_of(1).execs[0]), producer)
        seqs = [(e.producer, e.seq) for e in sink.execs]
        assert seqs == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)]

    def test_region_end_sees_whole_timeline(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        tl = timeline_of(4)
        bus.publish_region(tl)
        assert sink.regions == [tl]
        assert len(sink.execs) == 4

    def test_footprint_pairing_by_index(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        fps = [
            Footprint(writes=(("cur", i, 0, 1, 1),)) for i in range(3)
        ]
        bus.publish_region(timeline_of(3), footprints=fps)
        got = [ev.footprint.writes[0][1] for ev in sink.execs]
        assert got == [0, 1, 2]

    def test_inline_meta_footprint_fallback(self):
        # DAG regions attach the footprint in the exec meta instead
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        fp = Footprint(reads=(("cur", 0, 0, 4, 4),))
        tl = Timeline(ncpus=1)
        tl.append(TaskExec("t", 0, 0.0, 1.0, {"kind": "task", "footprint": fp}))
        bus.publish_region(tl)
        assert sink.execs[0].footprint is fp

    def test_iteration_mark_and_annotation(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        bus.iteration_mark(3, 1.5)
        bus.annotate(clock="wall", backend="procs")
        (mark,) = sink.marks
        assert isinstance(mark, IterationMarkEvent)
        assert (mark.iteration, mark.now) == (3, 1.5)
        (anno,) = sink.annos
        assert isinstance(anno, AnnotationEvent)
        assert anno.data == {"clock": "wall", "backend": "procs"}

    def test_detach(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        bus.detach(sink)
        bus.publish_region(timeline_of(2))
        assert sink.execs == []


class TestCounters:
    def test_counters_aggregate_without_consumers(self):
        bus = TelemetryBus()
        bus.counter("steals", 3)
        bus.counter("steals", 2)
        assert bus.counters["steals"] == 5

    def test_counter_events_reach_consumers(self):
        bus = TelemetryBus()
        sink = bus.attach(Sink())
        bus.counter("steals", 4)
        (ev,) = sink.counts
        assert isinstance(ev, CounterEvent)
        assert (ev.name, ev.value) == ("steals", 4)

    def test_dropped_events_accounting(self):
        bus = TelemetryBus()
        assert bus.dropped_events == 0
        bus.record_dropped(0)  # no-op, no counter entry
        assert "dropped_events" not in bus.counters
        bus.record_dropped(7)
        bus.record_dropped(5)
        assert bus.dropped_events == 12

    def test_region_counter_always_maintained(self):
        bus = TelemetryBus()
        bus.publish_region(timeline_of(2))
        bus.publish_region(timeline_of(2))
        assert bus.counters["regions"] == 2


class TestLazyAttachment:
    """Satellite: consumer attachment is lazy and fastpath eligibility is
    decided in one place (``ExecutionContext.instrumented``)."""

    def test_uninstrumented_run_constructs_no_consumers(self):
        res = run(make_config())
        assert res.monitor is None
        assert res.trace is None
        assert res.context._monitor is None
        assert res.context._tracer is None
        assert res.context.bus.consumers == ()

    def test_uninstrumented_sim_run_uses_fastpath(self):
        res = run(make_config(kernel="mandel", variant="omp_tiled"))
        assert res.fastpath_regions > 0

    def test_trace_disables_fastpath_and_attaches_recorder(self):
        res = run(make_config(trace=True))
        assert res.fastpath_regions == 0
        assert res.trace is not None and len(res.trace.events) > 0

    def test_monitoring_attaches_monitor_only(self):
        res = run(make_config(monitoring=True))
        assert res.monitor is not None and res.monitor.records
        assert res.trace is None
        assert res.fastpath_regions == 0

    def test_external_consumer_disables_fastpath(self):
        from repro.core.context import ExecutionContext

        ctx = ExecutionContext(make_config())
        assert ctx.fastpath_active()
        sink = ctx.bus.attach(Sink())
        assert ctx.instrumented()
        assert not ctx.fastpath_active()
        ctx.sequential_for(lambda item: 1.0, items=["a", "b"])
        assert len(sink.execs) == 2

    def test_observer_without_exec_hooks_keeps_fastpath(self):
        from repro.core.context import ExecutionContext

        class CounterOnly:
            def on_counter(self, ev):
                pass

        ctx = ExecutionContext(make_config())
        ctx.bus.attach(CounterOnly())
        assert not ctx.instrumented()
        assert ctx.fastpath_active()


class TestRunResultCounters:
    def test_regions_counter_surfaces(self):
        res = run(make_config(trace=True))
        assert res.counters["regions"] == res.completed_iterations
        assert res.dropped_events == 0

    def test_steals_counter_on_steal_schedule(self):
        # mandel's imbalanced tiles actually provoke steals; uniform
        # kernels would make this check vacuous (0 == 0)
        res = run(
            make_config(
                kernel="mandel", schedule="nonmonotonic:dynamic,1",
                trace=True, nthreads=4,
            )
        )
        stolen = sum(1 for e in res.trace.events if e.extra.get("stolen"))
        assert stolen > 0
        assert res.counters["steals"] == stolen


class TestGoldenCompat:
    def test_sim_trace_events_unchanged_by_bus(self):
        """The bus is a transport refactor: sim trace events keep the
        exact shape the golden fixtures pin (extra, reads, writes)."""
        res = run(make_config(trace=True))
        e = res.trace.events[0]
        assert e.kind == "tile"
        assert "region" in e.extra and "rmode" in e.extra and "index" in e.extra
        assert "footprint" not in e.extra
        assert res.trace.meta.extra == {}
