"""Tests for non-blocking MPI (isend/irecv/Request) and heat/mpi_2d."""

import time

import numpy as np
import pytest

from repro.core.engine import run
from repro.mpi.comm import run_world
from tests.conftest import make_config


class TestRequests:
    def test_isend_completes_immediately(self):
        def main(comm, rank):
            if rank == 0:
                req = comm.isend({"x": 1}, dest=1)
                done, payload = req.test()
                assert done and payload == {"x": 1}
                return None
            return comm.recv(source=0)

        results = run_world(2, main)
        assert results[1] == {"x": 1}

    def test_irecv_wait(self):
        def main(comm, rank):
            if rank == 0:
                req = comm.irecv(source=1, tag=5)
                comm.send("go", dest=1)
                return req.wait()
            comm.recv(source=0)
            comm.send("answer", dest=0, tag=5)
            return None

        results = run_world(2, main)
        assert results[0] == "answer"

    def test_irecv_test_polls(self):
        def main(comm, rank):
            if rank == 0:
                req = comm.irecv(source=1)
                done, _ = req.test()
                # may or may not have arrived yet; eventually it must
                deadline = time.time() + 5.0
                while not done and time.time() < deadline:
                    done, payload = req.test()
                assert done
                return req.wait()  # idempotent once done
            comm.send(42, dest=0)
            return None

        results = run_world(2, main)
        assert results[0] == 42

    def test_posted_receives_match_out_of_order_sends(self):
        def main(comm, rank):
            if rank == 0:
                ra = comm.irecv(source=1, tag=1)
                rb = comm.irecv(source=1, tag=2)
                return (rb.wait(), ra.wait())
            comm.send("two", dest=0, tag=2)
            comm.send("one", dest=0, tag=1)
            return None

        results = run_world(2, main)
        assert results[0] == ("two", "one")

    def test_halo_exchange_idiom(self):
        """The canonical pattern: post all receives, send, wait."""

        def main(comm, rank):
            left = (rank - 1) % comm.size
            right = (rank + 1) % comm.size
            r_left = comm.irecv(source=left, tag=0)
            r_right = comm.irecv(source=right, tag=1)
            comm.isend(f"from{rank}-r", dest=right, tag=0)
            comm.isend(f"from{rank}-l", dest=left, tag=1)
            return (r_left.wait(), r_right.wait())

        results = run_world(4, main)
        assert results[0] == ("from3-r", "from1-l")


class TestHeatMpi2D:
    @pytest.mark.parametrize("np_", [2, 4])
    def test_matches_shared_memory(self, np_):
        cfg = dict(kernel="heat", dim=32, tile_w=8, tile_h=8, iterations=30,
                   arg="corners")
        ref = run(make_config(variant="omp_tiled", **cfg))
        mpi = run(make_config(variant="mpi_2d", mpi_np=np_, **cfg))
        assert mpi.rank_results[0].context is not None
        ref_t = ref.context.data["temp"]
        mpi_t = mpi.rank_results[0].context.data["temp"]
        assert np.allclose(ref_t, mpi_t)

    def test_same_convergence_iteration(self):
        cfg = dict(kernel="heat", dim=16, tile_w=8, tile_h=8,
                   iterations=10000, arg="bar")
        ref = run(make_config(variant="seq", **cfg))
        mpi = run(make_config(variant="mpi_2d", mpi_np=4, **cfg))
        assert ref.early_stop == mpi.early_stop > 0

    def test_2d_process_grid_used(self):
        r = run(make_config(kernel="heat", variant="mpi_2d", mpi_np=4,
                            dim=32, tile_w=8, tile_h=8, iterations=10,
                            monitoring=True, debug="M", arg="corners"))
        # rank 3 of a 2x2 grid owns the bottom-right block
        rec = r.rank_results[3].monitor.records[0]
        computed = np.argwhere(rec.tiling >= 0)
        assert computed[:, 0].min() >= 2 and computed[:, 1].min() >= 2

    def test_misaligned_blocks_rejected(self):
        from repro.errors import MpiError

        with pytest.raises(MpiError):
            run(make_config(kernel="heat", variant="mpi_2d", mpi_np=3,
                            dim=32, tile_w=8, tile_h=8))

    def test_requires_mpirun(self):
        with pytest.raises(Exception):
            run(make_config(kernel="heat", variant="mpi_2d", mpi_np=0))
