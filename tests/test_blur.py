"""Tests for the blur kernel: stencil semantics and the Fig. 10 story."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.core.image import rgba
from repro.kernels.api import SCALAR_PIXEL_WORK, VECTOR_PIXEL_WORK
from repro.kernels.blur import blur_rect_scalar, blur_rect_vectorized
from tests.conftest import make_config


def random_img(dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**32, size=(dim, dim), dtype=np.uint32)


class TestBlurRect:
    def test_vectorized_matches_scalar_everywhere(self):
        src = random_img(16)
        d1 = np.zeros_like(src)
        d2 = np.zeros_like(src)
        blur_rect_scalar(src, d1, 0, 0, 16, 16)
        blur_rect_vectorized(src, d2, 0, 0, 16, 16)
        assert np.array_equal(d1, d2)

    def test_vectorized_matches_scalar_on_inner_rect(self):
        src = random_img(16)
        d1 = np.zeros_like(src)
        d2 = np.zeros_like(src)
        blur_rect_scalar(src, d1, 4, 4, 8, 8)
        blur_rect_vectorized(src, d2, 4, 4, 8, 8)
        assert np.array_equal(d1[4:12, 4:12], d2[4:12, 4:12])

    def test_corner_pixel_averages_4_neighbours(self):
        src = np.zeros((4, 4), dtype=np.uint32)
        src[0, 0] = rgba(40, 0, 0, 0)
        src[0, 1] = rgba(80, 0, 0, 0)
        src[1, 0] = rgba(80, 0, 0, 0)
        src[1, 1] = rgba(40, 0, 0, 0)
        dst = np.zeros_like(src)
        blur_rect_vectorized(src, dst, 0, 0, 1, 1)
        assert int(dst[0, 0]) >> 24 == (40 + 80 + 80 + 40) // 4

    def test_uniform_image_is_fixed_point(self):
        src = np.full((8, 8), rgba(10, 20, 30, 255), dtype=np.uint32)
        dst = np.zeros_like(src)
        blur_rect_vectorized(src, dst, 0, 0, 8, 8)
        assert np.array_equal(dst, src)


class TestVariants:
    @pytest.mark.parametrize("v", ["tiled", "omp_tiled", "omp_tiled_opt"])
    def test_equivalent_to_scalar_seq(self, v):
        cfg = dict(kernel="blur", dim=24, tile_w=8, tile_h=8, iterations=2, seed=7)
        ref = run(make_config(variant="seq", **cfg))
        got = run(make_config(variant=v, **cfg))
        assert np.array_equal(ref.image, got.image), f"variant {v} diverges"

    def test_blur_smooths(self):
        before = run(make_config(kernel="blur", variant="tiled", dim=32,
                                 tile_w=8, tile_h=8, iterations=1, seed=7))
        # variance of channel values decreases under averaging
        r0 = run(make_config(kernel="blur", variant="tiled", dim=32, tile_w=8,
                             tile_h=8, iterations=4, seed=7))
        var_before = (before.image >> 24 & 0xFF).astype(float).var()
        var_after = (r0.image >> 24 & 0xFF).astype(float).var()
        assert var_after < var_before


class TestFig10WorkModel:
    def test_opt_variant_is_about_3x_cheaper_at_16x16_grid(self):
        """Paper: removing conditionals from inner tiles -> ~3x."""
        cfg = dict(kernel="blur", dim=128, tile_w=8, tile_h=8, iterations=2,
                   nthreads=4)
        basic = run(make_config(variant="omp_tiled", **cfg))
        opt = run(make_config(variant="omp_tiled_opt", **cfg))
        factor = basic.virtual_time / opt.virtual_time
        assert 2.0 < factor < 4.5

    def test_inner_tiles_8x_cheaper_in_heatmap(self):
        r = run(make_config(kernel="blur", variant="omp_tiled_opt", dim=64,
                            tile_w=8, tile_h=8, iterations=1, nthreads=4,
                            monitoring=True))
        heat = r.monitor.records[0].heat
        border = np.concatenate([heat[0], heat[-1], heat[1:-1, 0], heat[1:-1, -1]])
        inner = heat[1:-1, 1:-1].ravel()
        ratio = border.mean() / inner.mean()
        assert ratio == pytest.approx(SCALAR_PIXEL_WORK / VECTOR_PIXEL_WORK, rel=0.2)

    def test_basic_variant_uniform_heat(self):
        r = run(make_config(kernel="blur", variant="omp_tiled", dim=64,
                            tile_w=8, tile_h=8, iterations=1, nthreads=4,
                            monitoring=True))
        heat = r.monitor.records[0].heat
        assert heat.max() == pytest.approx(heat.min(), rel=0.01)

    def test_real_python_vectorization_gap_is_large(self):
        """The honest measurement behind the work-model constants: the
        scalar path really is an order of magnitude slower."""
        import time

        src = random_img(32)
        dst = np.zeros_like(src)
        t0 = time.perf_counter()
        blur_rect_scalar(src, dst, 0, 0, 32, 32)
        scalar_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            blur_rect_vectorized(src, dst, 0, 0, 32, 32)
        vec_t = (time.perf_counter() - t0) / 5
        assert scalar_t > 3 * vec_t  # conservative: usually >> 10x
