"""Tests for the Game of Life kernel: rule, laziness, datasets, MPI."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.kernels.life import GLIDER, life_step_rect, make_dataset
from tests.conftest import make_config


def step_full(cells):
    nxt = np.zeros_like(cells)
    life_step_rect(cells, nxt, 0, 0, cells.shape[0], cells.shape[1])
    return nxt


class TestRule:
    def test_blinker_oscillates(self):
        cells = np.zeros((5, 5), dtype=np.uint8)
        cells[2, 1:4] = 1  # horizontal blinker
        nxt = step_full(cells)
        expected = np.zeros_like(cells)
        expected[1:4, 2] = 1  # vertical
        assert np.array_equal(nxt, expected)
        assert np.array_equal(step_full(nxt), cells)

    def test_block_is_still_life(self):
        cells = np.zeros((4, 4), dtype=np.uint8)
        cells[1:3, 1:3] = 1
        assert np.array_equal(step_full(cells), cells)

    def test_lonely_cell_dies(self):
        cells = np.zeros((3, 3), dtype=np.uint8)
        cells[1, 1] = 1
        assert step_full(cells).sum() == 0

    def test_border_cells_have_dead_outside(self):
        cells = np.ones((2, 2), dtype=np.uint8)  # block in the corner
        assert np.array_equal(step_full(cells), cells)

    def test_glider_translates_diagonally(self):
        cells = np.zeros((10, 10), dtype=np.uint8)
        for dy, dx in GLIDER:
            cells[2 + dy, 2 + dx] = 1
        c = cells
        for _ in range(4):  # glider period is 4, moving (+1, +1)
            c = step_full(c)
        expected = np.zeros_like(cells)
        for dy, dx in GLIDER:
            expected[3 + dy, 3 + dx] = 1
        assert np.array_equal(c, expected)

    def test_rect_update_matches_full_update(self):
        rng = np.random.default_rng(3)
        cells = (rng.random((12, 12)) < 0.4).astype(np.uint8)
        full = step_full(cells)
        tiled = np.zeros_like(cells)
        for y in range(0, 12, 4):
            for x in range(0, 12, 4):
                life_step_rect(cells, tiled, y, x, 4, 4)
        assert np.array_equal(full, tiled)

    def test_changed_count(self):
        cells = np.zeros((5, 5), dtype=np.uint8)
        cells[2, 1:4] = 1
        nxt = np.zeros_like(cells)
        changed = life_step_rect(cells, nxt, 0, 0, 5, 5)
        assert changed == 4  # 2 births + 2 deaths


class TestDatasets:
    def test_known_names(self):
        for name in ["random", "diag", "gun", "blinkers"]:
            cells = make_dataset(name, 64, seed=1)
            assert cells.shape == (64, 64)
            assert cells.any()

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("nope", 32)

    def test_random_is_seed_deterministic(self):
        assert np.array_equal(make_dataset("random", 32, 5), make_dataset("random", 32, 5))
        assert not np.array_equal(make_dataset("random", 32, 5), make_dataset("random", 32, 6))

    def test_diag_is_sparse(self):
        cells = make_dataset("diag", 128)
        assert cells.mean() < 0.02


class TestVariants:
    @pytest.mark.parametrize("v", ["omp_tiled", "lazy"])
    @pytest.mark.parametrize("dataset", ["random", "diag", "gun"])
    def test_equivalent_to_seq(self, v, dataset):
        cfg = dict(kernel="life", dim=48, tile_w=16, tile_h=16, iterations=6,
                   arg=dataset, seed=9)
        ref = run(make_config(variant="seq", **cfg))
        got = run(make_config(variant=v, **cfg))
        assert np.array_equal(ref.image, got.image), f"{v}/{dataset} diverges"

    def test_early_stop_on_still_life(self):
        # blinkers oscillate (no stop); an empty-ish board stabilizes fast:
        r = run(make_config(kernel="life", variant="omp_tiled", dim=32,
                            tile_w=16, tile_h=16, iterations=50, arg="random",
                            seed=12))
        if r.early_stop:
            assert r.completed_iterations == r.early_stop
            assert r.completed_iterations < 50

    def test_lazy_skips_steady_tiles(self):
        r = run(make_config(kernel="life", variant="lazy", dim=256, tile_w=16,
                            tile_h=16, iterations=6, arg="diag",
                            monitoring=True))
        fractions = [rec.computed_fraction() for rec in r.monitor.records]
        assert fractions[0] == 1.0  # first iteration computes everything
        # afterwards only the diagonal bands are recomputed (Fig. 13)
        assert all(f < 0.6 for f in fractions[1:])

    def test_eager_computes_everything(self):
        r = run(make_config(kernel="life", variant="omp_tiled", dim=64,
                            tile_w=16, tile_h=16, iterations=3, arg="diag",
                            monitoring=True))
        assert all(rec.computed_fraction() == 1.0 for rec in r.monitor.records)

    def test_image_refresh_colors(self):
        r = run(make_config(kernel="life", variant="seq", dim=32, tile_w=16,
                            tile_h=16, iterations=1, arg="gun"))
        vals = set(np.unique(r.image).tolist())
        assert vals <= {0x000000FF, 0xFFFF00FF}
        assert len(vals) == 2


class TestMpiVariant:
    def test_matches_single_process(self):
        cfg = dict(kernel="life", dim=64, tile_w=16, tile_h=16, iterations=6,
                   arg="diag")
        ref = run(make_config(variant="seq", **cfg))
        mpi = run(make_config(variant="mpi_omp", mpi_np=2, **cfg))
        assert np.array_equal(ref.image, mpi.image)

    @pytest.mark.parametrize("np_", [2, 4])
    def test_various_world_sizes(self, np_):
        cfg = dict(kernel="life", dim=64, tile_w=16, tile_h=16, iterations=4,
                   arg="gun")
        ref = run(make_config(variant="seq", **cfg))
        mpi = run(make_config(variant="mpi_omp", mpi_np=np_, **cfg))
        assert np.array_equal(ref.image, mpi.image)

    def test_each_rank_works_its_band_only(self):
        r = run(make_config(kernel="life", variant="mpi_omp", mpi_np=2,
                            dim=64, tile_w=16, tile_h=16, iterations=3,
                            arg="diag", monitoring=True, debug="M"))
        assert len(r.rank_results) == 2
        for rank, rr in enumerate(r.rank_results):
            rec = rr.monitor.records[0]
            computed_rows = sorted(set(np.argwhere(rec.tiling >= 0)[:, 0]))
            if rank == 0:
                assert all(row < 2 for row in computed_rows)
            else:
                assert all(row >= 2 for row in computed_rows)

    def test_requires_mpirun(self):
        with pytest.raises(Exception):
            run(make_config(kernel="life", variant="mpi_omp", mpi_np=0))
