"""Tests for domain decomposition helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MpiError
from repro.mpi.decomposition import band_of, bands, block_of, grid_shape


class TestBands:
    def test_even_split(self):
        assert bands(4, 16) == [(0, 4), (4, 4), (8, 4), (12, 4)]

    def test_uneven_split_extra_rows_first(self):
        assert bands(3, 10) == [(0, 4), (4, 3), (7, 3)]

    def test_bad_args(self):
        with pytest.raises(MpiError):
            band_of(2, 2, 16)
        with pytest.raises(MpiError):
            band_of(0, 0, 16)
        with pytest.raises(MpiError):
            band_of(0, 8, 4)  # more ranks than rows


class TestGridShape:
    @pytest.mark.parametrize("size,expected", [(1, (1, 1)), (2, (2, 1)),
                                               (4, (2, 2)), (6, (3, 2)),
                                               (12, (4, 3)), (7, (7, 1))])
    def test_most_square(self, size, expected):
        assert grid_shape(size) == expected

    def test_block_of_covers(self):
        blocks = [block_of(r, 4, 8) for r in range(4)]
        covered = set()
        for y0, x0, h, w in blocks:
            for y in range(y0, y0 + h):
                for x in range(x0, x0 + w):
                    covered.add((y, x))
        assert len(covered) == 64


@settings(max_examples=80, deadline=None)
@given(size=st.integers(1, 12), dim=st.integers(1, 256))
def test_bands_partition(size, dim):
    """Property: bands exactly partition [0, dim) in rank order."""
    if dim < size:
        with pytest.raises(MpiError):
            bands(size, dim)
        return
    bs = bands(size, dim)
    pos = 0
    for y0, h in bs:
        assert y0 == pos
        assert h >= 1
        pos += h
    assert pos == dim
    heights = [h for _, h in bs]
    assert max(heights) - min(heights) <= 1


@settings(max_examples=80, deadline=None)
@given(size=st.integers(1, 12), dim=st.integers(1, 256))
def test_blocks_partition(size, dim):
    """Property: the 2D blocks exactly partition the dim x dim domain."""
    try:
        blocks = [block_of(r, size, dim) for r in range(size)]
    except MpiError:
        return  # undecomposable (dim smaller than the grid) is allowed
    import numpy as np

    cov = np.zeros((dim, dim), dtype=np.int32)
    for y0, x0, h, w in blocks:
        assert h >= 1 and w >= 1
        assert 0 <= y0 and y0 + h <= dim
        assert 0 <= x0 and x0 + w <= dim
        cov[y0 : y0 + h, x0 : x0 + w] += 1
    assert (cov == 1).all()  # every cell covered by exactly one block


def test_degenerate_world_sizes_rejected():
    with pytest.raises(MpiError):
        grid_shape(0)
    with pytest.raises(MpiError):
        grid_shape(-3)
    with pytest.raises(MpiError):
        block_of(0, 0, 16)
    with pytest.raises(MpiError):
        block_of(2, 2, 16)  # rank out of range
    with pytest.raises(MpiError):
        block_of(-1, 4, 16)
