"""Tests for the run engine (lifecycle, results, performance output)."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.core.kernel import Kernel, variant
from repro.errors import UnknownVariantError
from tests.conftest import make_config


class ProbeKernel(Kernel):
    """Records lifecycle calls (not registered: passed explicitly)."""

    name = "probe"

    def __init__(self):
        self.calls = []

    def init(self, ctx):
        self.calls.append("init")
        ctx.data["inited"] = True

    def draw(self, ctx):
        self.calls.append("draw")

    def refresh_img(self, ctx):
        self.calls.append("refresh")

    def finalize(self, ctx):
        self.calls.append("finalize")

    @variant("seq")
    def compute_seq(self, ctx, nb_iter):
        for _ in ctx.iterations(nb_iter):
            self.calls.append("iter")
            ctx.sequential_for(lambda t: 1.0)
        return 0

    @variant("stops_at_2")
    def compute_stopping(self, ctx, nb_iter):
        for it in ctx.iterations(nb_iter):
            ctx.sequential_for(lambda t: 1.0)
            if it == 2:
                return it
        return 0


class TestLifecycle:
    def test_order(self):
        k = ProbeKernel()
        run(make_config(kernel="probe", variant="seq", iterations=3), kernel=k)
        assert k.calls == ["init", "draw", "iter", "iter", "iter", "refresh", "finalize"]

    def test_completed_iterations(self):
        k = ProbeKernel()
        r = run(make_config(kernel="probe", variant="seq", iterations=5), kernel=k)
        assert r.completed_iterations == 5
        assert r.early_stop == 0

    def test_early_stop(self):
        k = ProbeKernel()
        r = run(make_config(kernel="probe", variant="stops_at_2", iterations=10), kernel=k)
        assert r.early_stop == 2
        assert r.completed_iterations == 2

    def test_unknown_variant(self):
        with pytest.raises(UnknownVariantError):
            run(make_config(kernel="probe", variant="nope"), kernel=ProbeKernel())


class TestResult:
    def test_image_snapshot_is_independent(self):
        r = run(make_config(kernel="invert", variant="seq", iterations=1))
        assert isinstance(r.image, np.ndarray)
        assert r.image.shape == (64, 64)
        # snapshot survives context mutation
        r.context.img.cur[:] = 0
        assert r.image.any()

    def test_summary_format(self):
        r = run(make_config(kernel="none", variant="seq", iterations=7))
        assert r.summary().startswith("7 iterations completed in ")
        assert r.summary().endswith(("ms", "us"))

    def test_virtual_time_positive_and_monotone_in_iterations(self):
        r1 = run(make_config(kernel="mandel", variant="omp_tiled", iterations=1))
        r3 = run(make_config(kernel="mandel", variant="omp_tiled", iterations=3))
        assert 0 < r1.virtual_time < r3.virtual_time

    def test_elapsed_uses_virtual_for_sim(self):
        r = run(make_config(kernel="none", variant="seq"))
        assert r.elapsed == r.virtual_time

    @pytest.mark.slow
    def test_elapsed_uses_wall_for_threads(self):
        r = run(make_config(kernel="none", variant="omp_tiled", backend="threads"))
        assert r.elapsed == r.wall_time

    def test_speedup_vs(self):
        ref = run(make_config(kernel="mandel", variant="omp_tiled", nthreads=1))
        par = run(make_config(kernel="mandel", variant="omp_tiled", nthreads=4))
        s = par.speedup_vs(ref)
        assert s > 1.5  # mandel parallelizes well under dynamic

    def test_monitor_present_only_when_requested(self):
        assert run(make_config(monitoring=False)).monitor is None
        assert run(make_config(monitoring=True)).monitor is not None

    def test_trace_present_only_when_requested(self):
        assert run(make_config(trace=False)).trace is None
        tr = run(make_config(trace=True)).trace
        assert tr is not None and len(tr) > 0
        assert tr.meta.kernel == "mandel"

    def test_frame_hook_called_each_iteration(self):
        seen = []
        run(
            make_config(kernel="none", variant="seq", iterations=4),
            frame_hook=lambda ctx, it: seen.append(it),
        )
        assert seen == [1, 2, 3, 4]


class TestDeterminism:
    def test_same_config_same_virtual_time(self):
        a = run(make_config(kernel="mandel", variant="omp_tiled", schedule="nonmonotonic:dynamic"))
        b = run(make_config(kernel="mandel", variant="omp_tiled", schedule="nonmonotonic:dynamic"))
        assert a.virtual_time == b.virtual_time
        assert np.array_equal(a.image, b.image)

    def test_seed_changes_data_kernels(self):
        a = run(make_config(kernel="blur", variant="tiled", dim=32, tile_w=8,
                            tile_h=8, iterations=1, seed=1))
        b = run(make_config(kernel="blur", variant="tiled", dim=32, tile_w=8,
                            tile_h=8, iterations=1, seed=2))
        assert not np.array_equal(a.image, b.image)
