"""Differential harness for the perf-mode whole-frame fast path.

Every case runs the same configuration twice — fast path enabled
(``fastpath="auto"``, the default) and disabled (``fastpath="off"``,
forcing the per-tile reference implementation) — and asserts the two
runs are **bit-identical** in every observable: final image, virtual
clock, iteration counts, early-stop detection and kernel state arrays.
Exact ``==`` on floats is deliberate; the fast path's closed-form
makespans and batched kernels are designed to reproduce the reference
arithmetic bit for bit, and approximate comparisons would silently
erode that contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import run
from tests.conftest import make_config

SCHEDULES = ["static", "static,3", "dynamic", "dynamic,2", "guided",
             "nonmonotonic:dynamic"]

#: kernel/variant cells of the differential matrix; state_keys name the
#: ctx.data arrays that must also match bitwise after the run
CASES = [
    ("mandel", "seq", {}, []),
    ("mandel", "tiled", {}, []),
    ("mandel", "omp", {}, []),
    ("mandel", "omp_tiled", {}, []),
    ("mandel", "omp_tiled", {"arg": "julia"}, []),
    ("blur", "omp_tiled", {}, []),
    ("blur", "omp_tiled_opt", {}, []),
    ("life", "seq", {"arg": "random"}, ["cells"]),
    ("life", "omp_tiled", {"arg": "random"}, ["cells"]),
    ("life", "lazy", {"arg": "diag"}, ["cells"]),
    ("heat", "seq", {}, ["temp"]),
    ("heat", "omp_tiled", {}, ["temp"]),
    ("sandpile", "seq", {}, ["grains"]),
    ("sandpile", "omp_tiled", {}, ["grains"]),
]

CASE_IDS = [f"{k}-{v}" + (f"-{e['arg']}" if "arg" in e else "")
            for k, v, e, _ in CASES]


def run_pair(**cfg):
    fast = run(make_config(**cfg))
    ref = run(make_config(fastpath="off", **cfg))
    return fast, ref


def assert_identical(fast, ref, state_keys=()):
    assert fast.virtual_time == ref.virtual_time  # exact, not approx
    assert np.array_equal(fast.image, ref.image)
    assert fast.completed_iterations == ref.completed_iterations
    assert fast.early_stop == ref.early_stop
    for key in state_keys:
        assert np.array_equal(fast.context.data[key], ref.context.data[key]), key


class TestDifferentialMatrix:
    @pytest.mark.parametrize("kernel,variant,extra,state_keys", CASES, ids=CASE_IDS)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_fast_equals_reference(self, kernel, variant, extra, state_keys, schedule):
        fast, ref = run_pair(kernel=kernel, variant=variant, schedule=schedule,
                             iterations=3, **extra)
        assert fast.fastpath_regions > 0
        assert ref.fastpath_regions == 0
        assert_identical(fast, ref, state_keys)

    @pytest.mark.parametrize("ncpus", [1, 3, 4])
    @pytest.mark.parametrize("kernel,variant", [
        ("mandel", "omp_tiled"), ("heat", "omp_tiled"), ("life", "omp_tiled"),
    ])
    def test_team_sizes(self, kernel, variant, ncpus):
        extra = {"arg": "random"} if kernel == "life" else {}
        fast, ref = run_pair(kernel=kernel, variant=variant, nthreads=ncpus,
                             schedule="guided", iterations=3, **extra)
        assert fast.fastpath_regions > 0
        assert_identical(fast, ref)

    def test_uneven_tiling(self):
        # dim not a multiple of the tile size: ragged edge tiles
        fast, ref = run_pair(kernel="mandel", variant="omp_tiled", dim=72,
                             tile_w=16, tile_h=16, iterations=2)
        assert fast.fastpath_regions > 0
        assert_identical(fast, ref)


class TestJitterParity:
    """With jitter on, both paths must draw the same RNG stream — the
    fast path routes costs through the identical perturbation call."""

    @pytest.mark.parametrize("run_index", [0, 2])
    def test_jittered_runs_identical(self, run_index):
        fast, ref = run_pair(kernel="mandel", variant="omp_tiled",
                             jitter=0.1, run_index=run_index, iterations=3)
        assert fast.fastpath_regions > 0
        assert_identical(fast, ref)

    def test_jitter_stream_not_consumed_differently(self):
        # two consecutive regions must see the same draws in both modes
        fast, ref = run_pair(kernel="heat", variant="omp_tiled",
                             jitter=0.05, run_index=1, iterations=4)
        assert_identical(fast, ref, ["temp"])


class TestFastPathGating:
    """Instrumented runs must silently take the reference path."""

    def test_tracing_disables_fastpath(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", trace=True))
        assert r.fastpath_regions == 0
        assert r.trace is not None and len(r.trace) > 0

    def test_monitoring_disables_fastpath(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", monitoring=True))
        assert r.fastpath_regions == 0
        assert r.monitor is not None

    def test_traced_run_matches_fast_run(self):
        traced = run(make_config(kernel="mandel", variant="omp_tiled", trace=True))
        fast = run(make_config(kernel="mandel", variant="omp_tiled"))
        assert fast.fastpath_regions > 0
        assert fast.virtual_time == traced.virtual_time
        assert np.array_equal(fast.image, traced.image)

    def test_fastpath_off_via_config(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled", fastpath="off"))
        assert r.fastpath_regions == 0

    def test_threads_backend_never_fastpaths(self):
        r = run(make_config(kernel="invert", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, backend="threads"))
        assert r.fastpath_regions == 0


class TestRegionLogParity:
    """Sweep captures (replay.py) read ctx.region_log; both paths must
    record identical per-region work vectors."""

    @pytest.mark.parametrize("kernel,variant,extra", [
        ("mandel", "omp_tiled", {}),
        ("heat", "omp_tiled", {}),
        ("life", "omp_tiled", {"arg": "random"}),
    ])
    def test_region_log_identical(self, kernel, variant, extra):
        from repro.core.context import ExecutionContext
        from repro.core.kernel import get_kernel

        logs = []
        for fastpath in ("auto", "off"):
            cfg = make_config(kernel=kernel, variant=variant, iterations=3,
                              fastpath=fastpath, **extra)
            k = get_kernel(kernel)
            ctx = ExecutionContext(cfg)
            ctx.region_log = []
            k.init(ctx)
            k.draw(ctx)
            k.compute_fn(variant)(ctx, cfg.iterations)
            logs.append(ctx.region_log)
        fast_log, ref_log = logs
        assert len(fast_log) == len(ref_log)
        for (fk, fw), (rk, rw) in zip(fast_log, ref_log):
            assert fk == rk
            assert fw == rw  # exact float equality, element by element


class TestReplayCacheParity:
    def test_work_profile_cache_matches_fast_run(self):
        """The sweep-replay cache must predict a fast run's virtual time
        exactly, whichever path captured the profile."""
        from repro.expt.replay import WorkProfileCache

        cfg = make_config(kernel="mandel", variant="omp_tiled", iterations=2)
        cache = WorkProfileCache()
        assert cache.simulate(cfg) == pytest.approx(run(cfg).virtual_time)
