"""Tests for the spin, heat and scrollup kernels."""

import numpy as np
import pytest

from repro.core.engine import run
from repro.kernels.heat import TOLERANCE, jacobi_step_rect
from tests.conftest import make_config


class TestSpin:
    def test_variants_agree(self):
        a = run(make_config(kernel="spin", variant="seq", iterations=3))
        b = run(make_config(kernel="spin", variant="omp_tiled", iterations=3,
                            nthreads=4, schedule="guided"))
        assert np.array_equal(a.image, b.image)

    def test_rotates_between_iterations(self):
        one = run(make_config(kernel="spin", variant="seq", iterations=1))
        two = run(make_config(kernel="spin", variant="seq", iterations=2))
        assert not np.array_equal(one.image, two.image)

    def test_uniform_cost_balances_under_static(self):
        r = run(make_config(kernel="spin", variant="omp_tiled",
                            schedule="static", iterations=2, monitoring=True))
        assert r.monitor.load_imbalance() < 1.05  # contrast with mandel

    def test_full_period_returns_to_start(self):
        # 48 iterations x pi/24 = 2*pi: the wheel comes back around
        base = run(make_config(kernel="spin", variant="seq", iterations=1))
        full = run(make_config(kernel="spin", variant="seq", iterations=49))
        assert np.array_equal(base.image, full.image)


class TestJacobiStep:
    def test_uniform_field_is_fixed_point(self):
        temp = np.full((8, 8), 0.5)
        nxt = np.zeros_like(temp)
        sources = np.full((8, 8), np.nan)
        delta = jacobi_step_rect(temp, nxt, sources, 0, 0, 8, 8)
        assert delta == pytest.approx(0.0)
        assert np.allclose(nxt, 0.5)

    def test_sources_stay_fixed(self):
        temp = np.zeros((4, 4))
        temp[0, 0] = 1.0
        sources = np.full((4, 4), np.nan)
        sources[0, 0] = 1.0
        nxt = np.zeros_like(temp)
        jacobi_step_rect(temp, nxt, sources, 0, 0, 4, 4)
        assert nxt[0, 0] == 1.0

    def test_tiled_equals_full(self):
        rng = np.random.default_rng(4)
        temp = rng.random((12, 12))
        sources = np.full((12, 12), np.nan)
        sources[5, 5] = 1.0
        temp[5, 5] = 1.0
        full = np.zeros_like(temp)
        jacobi_step_rect(temp, full, sources, 0, 0, 12, 12)
        tiled = np.zeros_like(temp)
        for y in range(0, 12, 4):
            for x in range(0, 12, 4):
                jacobi_step_rect(temp, tiled, sources, y, x, 4, 4)
        assert np.allclose(full, tiled)

    def test_insulated_borders_conserve_uniformity(self):
        # replicated edges: a hot wall diffuses inward without leaking out
        temp = np.zeros((6, 6))
        temp[:, 0] = 1.0
        sources = np.full((6, 6), np.nan)
        sources[:, 0] = 1.0
        nxt = np.zeros_like(temp)
        jacobi_step_rect(temp, nxt, sources, 0, 0, 6, 6)
        assert (nxt[:, 1] > 0).all()
        assert nxt[0, 1] == pytest.approx(nxt[3, 1])


class TestHeatKernel:
    def test_variants_agree(self):
        cfg = dict(kernel="heat", dim=32, tile_w=8, tile_h=8, iterations=20)
        a = run(make_config(variant="seq", **cfg))
        b = run(make_config(variant="omp_tiled", nthreads=4, **cfg))
        assert np.allclose(a.context.data["temp"], b.context.data["temp"])

    def test_heat_flows_toward_equilibrium(self):
        r = run(make_config(kernel="heat", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=50, arg="corners"))
        temp = r.context.data["temp"]
        # the cold center warmed up, the sources stayed at 1.0
        assert temp[16, 16] > 0.0
        assert temp[0, 0] == 1.0

    def test_converges_eventually(self):
        r = run(make_config(kernel="heat", variant="seq", dim=16, tile_w=8,
                            tile_h=8, iterations=10000, arg="bar"))
        assert r.early_stop > 0
        # at convergence, no update exceeds the tolerance
        assert r.context.data["max_delta"] <= TOLERANCE

    def test_bad_dataset(self):
        with pytest.raises(ValueError):
            run(make_config(kernel="heat", variant="seq", arg="nope"))

    def test_refresh_produces_colors(self):
        r = run(make_config(kernel="heat", variant="seq", dim=32, tile_w=8,
                            tile_h=8, iterations=5, arg="corners"))
        assert len(np.unique(r.image)) > 2


class TestScrollup:
    def test_one_scroll_is_roll(self):
        orig = run(make_config(kernel="scrollup", variant="seq", iterations=64,
                               seed=2))
        one = run(make_config(kernel="scrollup", variant="seq", iterations=1,
                              seed=2))
        base = run(make_config(kernel="none", variant="seq", iterations=1, seed=2))
        assert np.array_equal(one.image, np.roll(base.image, -1, axis=0))
        # dim scrolls return to the original picture
        assert np.array_equal(orig.image, base.image)

    def test_variants_agree(self):
        a = run(make_config(kernel="scrollup", variant="seq", iterations=3, seed=1))
        b = run(make_config(kernel="scrollup", variant="omp_tiled",
                            iterations=3, seed=1, nthreads=4))
        assert np.array_equal(a.image, b.image)


class TestBlurMpi:
    @pytest.mark.parametrize("np_", [2, 4])
    def test_matches_shared_memory(self, np_):
        cfg = dict(kernel="blur", dim=64, tile_w=16, tile_h=16, iterations=3,
                   seed=8)
        ref = run(make_config(variant="omp_tiled_opt", **cfg))
        mpi = run(make_config(variant="mpi_omp", mpi_np=np_, **cfg))
        assert np.array_equal(ref.image, mpi.image)

    def test_misaligned_bands_rejected(self):
        from repro.errors import MpiError

        with pytest.raises(MpiError):
            run(make_config(kernel="blur", variant="mpi_omp", mpi_np=3,
                            dim=64, tile_w=16, tile_h=16))

    def test_ghost_exchange_traffic(self):
        r = run(make_config(kernel="blur", variant="mpi_omp", mpi_np=2,
                            dim=64, tile_w=16, tile_h=16, iterations=4, seed=8))
        for rr in r.rank_results:
            stats = rr.context.mpi.comm.stats
            assert stats.messages_sent >= 4  # one boundary row per iteration
