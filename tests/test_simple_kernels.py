"""Tests for the simple kernels: none, invert, transpose, pixelize."""

import numpy as np

from repro.core.engine import run
from tests.conftest import make_config


class TestInvert:
    def test_involution(self):
        one = run(make_config(kernel="invert", variant="seq", iterations=1, seed=3))
        two = run(make_config(kernel="invert", variant="seq", iterations=2, seed=3))
        zero = run(make_config(kernel="invert", variant="seq", iterations=2, seed=3))
        # applying invert twice = identity
        assert np.array_equal(two.image, zero.image)
        assert not np.array_equal(one.image, two.image)

    def test_alpha_preserved(self):
        r = run(make_config(kernel="invert", variant="omp_tiled", iterations=1))
        assert ((r.image & 0xFF) == 0xFF).all()

    def test_variants_agree(self):
        a = run(make_config(kernel="invert", variant="seq", iterations=3, seed=1))
        b = run(make_config(kernel="invert", variant="omp_tiled", iterations=3,
                            seed=1, nthreads=3, schedule="guided"))
        assert np.array_equal(a.image, b.image)


class TestTranspose:
    def test_transpose_is_matrix_transpose(self):
        r = run(make_config(kernel="transpose", variant="seq", iterations=1, seed=2))
        base = run(make_config(kernel="transpose", variant="seq", iterations=2, seed=2))
        # two transposes = identity; one transpose = .T of the original
        orig = run(make_config(kernel="none", variant="seq", iterations=1, seed=2))
        assert np.array_equal(r.image, orig.image.T)
        assert np.array_equal(base.image, orig.image)

    def test_variants_agree(self):
        a = run(make_config(kernel="transpose", variant="seq", iterations=1, seed=5))
        b = run(make_config(kernel="transpose", variant="omp_tiled", iterations=1,
                            seed=5, nthreads=4))
        assert np.array_equal(a.image, b.image)

    def test_rectangular_tiles(self):
        a = run(make_config(kernel="transpose", variant="omp_tiled", iterations=1,
                            seed=5, tile_w=16, tile_h=8))
        b = run(make_config(kernel="transpose", variant="seq", iterations=1,
                            seed=5, tile_w=32, tile_h=32))
        assert np.array_equal(a.image, b.image)


class TestPixelize:
    def test_each_tile_uniform(self):
        r = run(make_config(kernel="pixelize", variant="omp_tiled", dim=64,
                            tile_w=16, tile_h=16, iterations=1))
        for ty in range(0, 64, 16):
            for tx in range(0, 64, 16):
                tile = r.image[ty : ty + 16, tx : tx + 16]
                assert (tile == tile[0, 0]).all()

    def test_idempotent(self):
        one = run(make_config(kernel="pixelize", variant="seq", iterations=1, seed=4))
        two = run(make_config(kernel="pixelize", variant="seq", iterations=2, seed=4))
        assert np.array_equal(one.image, two.image)

    def test_variants_agree(self):
        a = run(make_config(kernel="pixelize", variant="seq", iterations=1, seed=6))
        b = run(make_config(kernel="pixelize", variant="omp_tiled", iterations=1, seed=6))
        assert np.array_equal(a.image, b.image)


class TestNone:
    def test_image_unchanged(self):
        r0 = run(make_config(kernel="none", variant="seq", iterations=1, seed=7))
        r5 = run(make_config(kernel="none", variant="omp_tiled", iterations=5, seed=7))
        assert np.array_equal(r0.image, r5.image)

    def test_cost_is_pure_overhead(self):
        """The 'none' kernel exposes runtime overhead: more tiles =>
        more dispatch cost, at equal total work."""
        coarse = run(make_config(kernel="none", variant="omp_tiled", dim=64,
                                 tile_w=32, tile_h=32, iterations=1))
        fine = run(make_config(kernel="none", variant="omp_tiled", dim=64,
                               tile_w=4, tile_h=4, iterations=1))
        assert fine.virtual_time > coarse.virtual_time
