"""``--check-races`` parity on ``backend="procs"``.

The PR-4 rejection is lifted: worker-side footprints flow back to the
master over the telemetry ring, so the happens-before detector reaches
the same verdict on procs traces as on sim/threads ones — flagging the
seeded-buggy example and staying clean on the corrected variant.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analyze import check_races
from repro.core.config import RunConfig
from repro.core.engine import run
from repro.core.kernel import load_kernel_module
from repro.omp import procs as procs_mod

EXAMPLES = Path(__file__).parent.parent / "examples"

NW = 2


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools_at_end():
    yield
    procs_mod.shutdown_pools()


def race_config(backend: str, kernel: str) -> RunConfig:
    return RunConfig(
        kernel=kernel, variant="omp_tiled", dim=64, tile_w=16, tile_h=16,
        iterations=1, nthreads=NW, schedule="dynamic", backend=backend,
        seed=42, trace=True, footprints=True,
    )


def verdict(backend: str, kernel: str):
    r = run(race_config(backend, kernel))
    assert r.dropped_events == 0  # full-fidelity footprints for the verdict
    return check_races(r.trace)


def test_seeded_buggy_same_verdict_as_sim():
    load_kernel_module(str(EXAMPLES / "buggy_blur_writes_cur.py"))
    results = {b: verdict(b, "blur_buggy") for b in ("sim", "procs")}
    assert not results["sim"].clean  # sanity: the bug is seeded
    assert not results["procs"].clean
    for key in ("tasks_checked", "regions_checked"):
        assert getattr(results["procs"], key) == getattr(results["sim"], key)

    def race_keys(rr):
        return sorted(
            (r.kind, r.buf, (r.a.event.x, r.a.event.y), (r.b.event.x, r.b.event.y))
            for r in rr.races
        )

    assert race_keys(results["procs"]) == race_keys(results["sim"])


def test_correct_variant_clean_on_procs():
    rr = verdict("procs", "blur")
    assert rr.clean
    assert rr.tasks_checked == 16  # 64/16 grid actually analyzed, not vacuous


def test_threads_backend_same_verdict():
    load_kernel_module(str(EXAMPLES / "buggy_blur_writes_cur.py"))
    rr = verdict("threads", "blur_buggy")
    assert not rr.clean
    assert verdict("threads", "blur").clean


def test_cli_check_races_on_procs(capsys):
    """End-to-end: ``easypap --check-races`` exits 1 on the buggy kernel
    and 0 on the corrected one, with backend=procs."""
    from repro.cli import main

    buggy = str(EXAMPLES / "buggy_blur_writes_cur.py")
    base = ["-k", "blur_buggy", "-v", "omp_tiled", "--load", buggy,
            "-s", "64", "-ts", "16", "-i", "1", "--nb-threads", str(NW),
            "--backend", "procs", "--check-races"]
    assert main(base) == 1
    out = capsys.readouterr().out
    assert "data race" in out
    ok = ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16", "-i", "1",
          "--nb-threads", str(NW), "--backend", "procs", "--check-races"]
    assert main(ok) == 0
    assert "no data races" in capsys.readouterr().out
