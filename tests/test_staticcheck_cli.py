"""CLI surfaces of the static checker: ``python -m repro.staticcheck``,
``easypap --static-check`` and ``easyview --halos``."""

import json
from pathlib import Path

from repro.cli import main as easypap_main
from repro.easyview_cli import main as easyview_main
from repro.staticcheck import SCHEMA_VERSION
from repro.staticcheck.__main__ import main as staticcheck_main

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
BUGGY_BLUR = str(EXAMPLES / "buggy_blur_writes_cur.py")
BUGGY_LIFE = str(EXAMPLES / "buggy_life_taskdeps.py")


class TestStaticcheckModuleCli:
    def test_clean_kernel_exits_zero(self, capsys):
        rc = staticcheck_main(["blur", "-V", "omp_tiled"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blur/omp_tiled: clean" in out
        assert "1 clean, 0 race, 0 unknown" in out

    def test_buggy_module_exits_one(self, capsys):
        rc = staticcheck_main([BUGGY_BLUR, "-V", "omp_tiled"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "blur_buggy/omp_tiled: RACE" in out
        assert "race on buffer 'cur'" in out

    def test_dotted_module_target(self, capsys):
        rc = staticcheck_main(
            ["examples.buggy_life_taskdeps", "-V", "omp_task"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "life_buggy/omp_task: RACE" in out
        assert "missing ordering edge" in out

    def test_unresolvable_target_is_usage_error(self, capsys):
        rc = staticcheck_main(["no.such.module"])
        assert rc == 2
        assert "cannot resolve target" in capsys.readouterr().err

    def test_expect_matches_annotations(self, capsys):
        rc = staticcheck_main([BUGGY_BLUR, BUGGY_LIFE, "--expect"])
        assert rc == 0
        assert "expected verdict(s) matched" in capsys.readouterr().out

    def test_json_schema(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = staticcheck_main(
            ["blur", "-V", "omp_tiled", "--json", str(out_path)]
        )
        assert rc == 0
        data = json.loads(out_path.read_text(encoding="utf-8"))
        assert data["easypap_staticcheck"] == SCHEMA_VERSION
        (report,) = data["reports"]
        assert report["kernel"] == "blur"
        assert report["verdict"] == "clean"
        assert report["footprints"]["reads"]
        assert data["counters"]["staticcheck_variants"] == 1

    def test_verbose_prints_footprints(self, capsys):
        rc = staticcheck_main(["blur", "-V", "omp_tiled", "-v"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "footprints of blur/omp_tiled" in out
        assert "read  cur[" in out


class TestEasypapStaticCheck:
    ARGS = ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16", "-i", "2"]

    def test_static_only_does_not_execute(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(*args, **kwargs):
            raise AssertionError("--static-check alone must not run")

        monkeypatch.setattr(cli, "run", boom)
        rc = easypap_main([*self.ARGS, "--static-check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "blur/omp_tiled: clean" in out
        assert "read  cur[" in out  # inferred halos are printed

    def test_static_race_fails_fast(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(*args, **kwargs):
            raise AssertionError("a racy variant must not be executed")

        monkeypatch.setattr(cli, "run", boom)
        rc = easypap_main(
            ["--load", BUGGY_BLUR, "-k", "blur_buggy", "-v", "omp_tiled",
             "-s", "64", "-ts", "16", "--static-check", "--check-races"]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "RACE" in captured.out
        assert "was not executed" in captured.err

    def test_clean_verdict_skips_dynamic_footprints(self, tmp_path, capsys):
        trace = tmp_path / "trusted.evt"
        rc = easypap_main(
            [*self.ARGS, "--static-check", "--check-races", "-t",
             "--trace-file", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "statically proven clean" in out
        # the trust path really skipped footprint recording
        from repro.trace.format import load_trace

        loaded = load_trace(trace)
        assert all(not e.reads and not e.writes for e in loaded.events)

    def test_static_counter_merged_into_telemetry(self, capsys):
        rc = easypap_main([*self.ARGS, "--static-check", "--check-races"])
        assert rc == 0


class TestEasyviewHalos:
    def _record(self, tmp_path):
        trace = tmp_path / "t.evt"
        rc = easypap_main(
            ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16",
             "-i", "2", "--check-races", "-t", "--trace-file", str(trace)]
        )
        assert rc == 0
        return trace

    def test_halos_annotation_and_crossval(self, tmp_path, capsys):
        trace = self._record(tmp_path)
        capsys.readouterr()
        rc = easyview_main([str(trace), "--halos"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "static halos:" in out
        assert "read  cur[x=TX-1..TW+TX+1" in out
        assert "cross-validation blur/omp_tiled: ok" in out

    def test_unregistered_kernel_needs_load(self, tmp_path, capsys):
        header = {
            "easypap_trace": 1,
            "meta": {"kernel": "ghost", "variant": "seq", "dim": 8,
                     "tile_w": 8, "tile_h": 8, "ncpus": 1,
                     "schedule": "static", "iterations": 1, "label": "cur",
                     "machine": "virtual", "extra": {}},
            "nevents": 1,
        }
        event = {"iteration": 1, "cpu": 0, "start": 0.0, "end": 1e-6,
                 "x": 0, "y": 0, "w": 8, "h": 8, "kind": "tile", "extra": {}}
        p = tmp_path / "ghost.evt"
        p.write_text(json.dumps(header) + "\n" + json.dumps(event) + "\n",
                     encoding="utf-8")
        rc = easyview_main([str(p), "--halos"])
        out = capsys.readouterr().out
        assert rc == 2
        assert "not registered" in out and "--load" in out
