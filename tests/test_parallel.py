"""Tests for parallel_for: sim backend semantics + real threads backend."""

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.sched.costmodel import CostModel
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def ctx_with(**kw):
    model = kw.pop("model", None)
    return ExecutionContext(make_config(**kw), model=model)


class TestSimBackend:
    def test_all_items_executed_once(self):
        ctx = ctx_with(dim=64, tile_w=16, tile_h=16)
        seen = []
        ctx.parallel_for(lambda t: seen.append(t.index) or 1.0)
        assert sorted(seen) == list(range(16))

    def test_clock_advances_by_makespan_plus_forkjoin(self):
        ctx = ctx_with(nthreads=2, schedule="dynamic", model=ZERO)
        items = list(range(4))
        res = ctx.parallel_for(lambda i: 1.0, items)
        assert res.makespan == pytest.approx(2.0)
        assert ctx.vclock == pytest.approx(2.0)  # fork_join is 0 here

    def test_fork_join_overhead_added(self):
        model = CostModel(1.0, 0.0, 0.0, fork_join_overhead=0.5)
        ctx = ctx_with(nthreads=2, schedule="dynamic", model=model)
        ctx.parallel_for(lambda i: 1.0, [0, 1])
        assert ctx.vclock == pytest.approx(1.5)

    def test_default_items_are_grid_tiles(self):
        ctx = ctx_with(dim=32, tile_w=16, tile_h=16)
        res = ctx.parallel_for(lambda t: 1.0)
        assert len(res.timeline) == 4

    def test_schedule_override(self):
        ctx = ctx_with(schedule="static", nthreads=2, model=ZERO)
        res = ctx.parallel_for(lambda i: 1.0, list(range(6)), schedule="dynamic,3")
        assert all(g.size == 3 for g in res.grabs)

    def test_iteration_tagged_in_meta(self):
        ctx = ctx_with(model=ZERO)
        for it in ctx.iterations(2):
            res = ctx.parallel_for(lambda i: 1.0, [0, 1])
            assert all(e.meta["iteration"] == it for e in res.timeline)

    def test_monitor_receives_timelines(self):
        ctx = ctx_with(monitoring=True, model=ZERO)
        for _ in ctx.iterations(1):
            ctx.parallel_for(lambda t: 1.0)
        assert ctx.monitor is not None
        rec = ctx.monitor.records[0]
        assert rec.ntasks == len(ctx.grid)
        assert (rec.tiling >= 0).all()

    def test_work_none_counts_as_zero(self):
        ctx = ctx_with(model=ZERO)
        res = ctx.parallel_for(lambda i: None, [0, 1])
        assert res.makespan == pytest.approx(0.0)

    def test_region_log_capture(self):
        ctx = ctx_with(model=ZERO)
        ctx.region_log = []
        ctx.parallel_for(lambda i: float(i), [1, 2, 3])
        kind, works = ctx.region_log[0]
        assert kind == "par" and works == [1.0, 2.0, 3.0]


class TestSequentialFor:
    def test_runs_on_cpu0_back_to_back(self):
        ctx = ctx_with(model=ZERO)
        ctx.sequential_for(lambda i: 2.0, [0, 1, 2])
        assert ctx.vclock == pytest.approx(6.0)

    def test_recorded_for_monitoring(self):
        ctx = ctx_with(monitoring=True, model=ZERO)
        for _ in ctx.iterations(1):
            ctx.sequential_for(lambda t: 1.0)
        rec = ctx.monitor.records[0]
        assert set(np.unique(rec.tiling)) == {0}


@pytest.mark.slow
class TestThreadsBackend:
    """The real-thread backend.

    Every assertion here is *structural* — derived from the scheduling
    contract (assignment blocks, queue exhaustion, timeline validity) —
    never from how long anything took.  Real threads make wall-clock
    durations non-deterministic, but which rank runs which index under
    ``static`` is not, and that is what we pin.
    """

    @pytest.mark.parametrize("schedule", ["static", "dynamic,2", "guided", "nonmonotonic:dynamic"])
    def test_all_items_executed_exactly_once(self, schedule):
        import threading

        ctx = ctx_with(backend="threads", nthreads=4, schedule=schedule)
        lock = threading.Lock()
        seen = []

        def body(i):
            with lock:
                seen.append(i)
            return 1.0

        res = ctx.parallel_for(body, list(range(37)))
        assert sorted(seen) == list(range(37))
        assert len(res.timeline) == 37
        res.timeline.validate()

    def test_wall_clock_advances(self):
        ctx = ctx_with(backend="threads", nthreads=2)
        before = ctx.vclock
        res = ctx.parallel_for(lambda i: 1.0, list(range(8)))
        # perf_counter is monotonic: elapsed > 0 regardless of load
        assert ctx.vclock > before
        res.timeline.validate()
        assert all(before <= e.start <= e.end <= ctx.vclock + 1e-9
                   for e in res.timeline)

    def test_static_assignment_is_honoured(self):
        # Structural replacement for "were multiple threads used": under
        # static scheduling worker r executes exactly assignment[r], so
        # the timeline's rank->indices map must equal the policy's —
        # with 64 items on 4 ranks, all 4 workers provably participate.
        from repro.sched.policies import StaticSchedule

        ctx = ctx_with(backend="threads", nthreads=4, schedule="static")
        res = ctx.parallel_for(lambda i: 1.0, list(range(64)))
        expected = StaticSchedule().assignment(64, 4)
        for rank in range(4):
            got = sorted(e.meta["index"] for e in res.timeline if e.cpu == rank)
            want = sorted(i for chunk in expected[rank] for i in chunk.indices())
            assert got == want, f"rank {rank} ran the wrong block"
        assert {e.cpu for e in res.timeline} == set(range(4))

    def test_worker_threads_carry_team_names(self):
        import threading

        ctx = ctx_with(backend="threads", nthreads=4, schedule="static")
        names = set()
        lock = threading.Lock()

        def body(i):
            with lock:
                names.add(threading.current_thread().name)
            return 1.0

        ctx.parallel_for(body, list(range(64)))
        # static => every rank owns a non-empty block => all 4 names,
        # deterministically (no "hope the OS interleaved them" check)
        assert names == {f"easypap-{r}" for r in range(4)}

    def test_kernel_run_matches_sim_image(self):
        from repro.core.engine import run

        a = run(make_config(kernel="invert", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=2, backend="sim"))
        b = run(make_config(kernel="invert", variant="omp_tiled", dim=32,
                            tile_w=8, tile_h=8, iterations=2, backend="threads"))
        assert np.array_equal(a.image, b.image)
