"""Tests for TaskRegion (omp tasks with dependencies)."""

import pytest

from repro.core.context import ExecutionContext
from repro.errors import DependencyError
from repro.sched.costmodel import CostModel
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


def ctx_with(**kw):
    model = kw.pop("model", ZERO)
    return ExecutionContext(make_config(**kw), model=model)


class TestTaskRegion:
    def test_bodies_execute_at_submission(self):
        ctx = ctx_with()
        order = []
        with ctx.task_region() as tr:
            tr.task(lambda: order.append("a") or 1.0)
            tr.task(lambda: order.append("b") or 1.0)
        assert order == ["a", "b"]

    def test_independent_tasks_parallelize(self):
        ctx = ctx_with(nthreads=4)
        with ctx.task_region() as tr:
            for i in range(4):
                tr.task(lambda: 1.0)
        assert tr.timeline.makespan == pytest.approx(1.0)
        assert ctx.vclock == pytest.approx(1.0)

    def test_dependent_tasks_serialize(self):
        ctx = ctx_with(nthreads=4)
        with ctx.task_region() as tr:
            for i in range(4):
                tr.task(lambda: 1.0, reads=["x"], writes=["x"])
        assert tr.timeline.makespan == pytest.approx(4.0)

    def test_wavefront_region(self):
        ctx = ctx_with(nthreads=16)
        n = 4
        with ctx.task_region() as tr:
            for i in range(n):
                for j in range(n):
                    tr.task(
                        lambda: 1.0,
                        item=(i, j),
                        reads=[(i - 1, j), (i, j - 1)],
                        writes=[(i, j)],
                    )
        assert tr.timeline.makespan == pytest.approx(2 * n - 1)

    def test_clock_resumes_after_region(self):
        ctx = ctx_with(nthreads=2)
        ctx.advance_clock(5.0)
        with ctx.task_region() as tr:
            tr.task(lambda: 1.0)
        assert ctx.vclock == pytest.approx(6.0)
        assert all(e.start >= 5.0 for e in tr.timeline)

    def test_double_close_rejected(self):
        ctx = ctx_with()
        tr = ctx.task_region()
        with tr:
            tr.task(lambda: 1.0)
        with pytest.raises(DependencyError):
            tr.close()

    def test_submit_after_close_rejected(self):
        ctx = ctx_with()
        with ctx.task_region() as tr:
            pass
        with pytest.raises(DependencyError):
            tr.task(lambda: 1.0)

    def test_exception_skips_simulation(self):
        ctx = ctx_with()
        before = ctx.vclock
        with pytest.raises(RuntimeError):
            with ctx.task_region() as tr:
                tr.task(lambda: 1.0)
                raise RuntimeError("student bug")
        assert ctx.vclock == before  # no partial timeline committed

    def test_region_log_records_dag(self):
        ctx = ctx_with()
        ctx.region_log = []
        with ctx.task_region() as tr:
            a = tr.task(lambda: 2.0, writes=["x"])
            tr.task(lambda: 3.0, reads=["x"])
        kind, works, preds = ctx.region_log[-1]
        assert kind == "dag"
        assert works == [2.0, 3.0]
        assert preds == [[], [a]]

    def test_monitor_and_trace_fed(self):
        ctx = ctx_with(monitoring=True, trace=True)
        for _ in ctx.iterations(1):
            with ctx.task_region(kind="task_dr") as tr:
                tr.task(lambda: 1.0, item=ctx.grid[0])
        assert ctx.monitor.records[0].ntasks == 1
        assert ctx.tracer.events[0].kind == "task_dr"
