"""Unit tests for the socket executor's message layer.

The protocol contract: every frame round-trips exactly; every
deviation — truncated frames, oversized frames, unknown type bytes,
undecodable payloads — is a clean :class:`ProtocolError`, never a hang
and never a silently-wrong message.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.core.config import RunConfig
from repro.expt.executors.base import RunOptions
from repro.expt.executors.protocol import (
    HEARTBEAT,
    JOB,
    MAX_FRAME,
    MESSAGE_NAMES,
    NO_MORE_JOBS,
    REQUEST_JOB,
    RESULT,
    ProtocolError,
    recv_message,
    send_message,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestRoundTrip:
    def test_every_message_type_round_trips(self, pair):
        a, b = pair
        payloads = {
            REQUEST_JOB: {"worker_id": "host-123"},
            JOB: {
                "job_id": 7,
                "config": RunConfig(kernel="mandel", variant="omp_tiled", dim=64,
                                    tile_w=16, tile_h=16, iterations=2),
                "rep": 1,
                "options": RunOptions(machine="m", timeout=1.5, retries=2),
            },
            RESULT: {"job_id": 7, "row": {"kernel": "mandel", "time_us": 12.5}},
            NO_MORE_JOBS: None,
            HEARTBEAT: None,
        }
        for mtype, payload in payloads.items():
            send_message(a, mtype, payload)
            got_type, got_payload = recv_message(b)
            assert got_type == mtype
            if mtype == JOB:
                assert got_payload["config"].csv_row() == payload["config"].csv_row()
                assert got_payload["options"] == payload["options"]
            else:
                assert got_payload == payload

    def test_frames_stay_aligned_back_to_back(self, pair):
        a, b = pair
        for i in range(20):
            send_message(a, RESULT, {"job_id": i, "row": {"x": "y" * i}})
        for i in range(20):
            mtype, payload = recv_message(b)
            assert mtype == RESULT and payload["job_id"] == i

    def test_clean_close_between_frames_is_none(self, pair):
        a, b = pair
        send_message(a, HEARTBEAT)
        a.close()
        assert recv_message(b) == (HEARTBEAT, None)
        assert recv_message(b) is None


class TestRejection:
    def test_truncated_header_raises(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # 2 of 5 header bytes, then EOF
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_message(b)

    def test_truncated_payload_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">IB", 100, HEARTBEAT) + b"x" * 10)
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_message(b)

    def test_oversized_incoming_frame_rejected_before_allocation(self, pair):
        a, b = pair
        # a length prefix of ~4 GiB must be refused from the header alone
        a.sendall(struct.pack(">IB", 2**32 - 1, RESULT))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_message(b)

    def test_oversized_outgoing_payload_rejected(self, pair):
        a, _b = pair
        with pytest.raises(ProtocolError, match="exceeds"):
            send_message(a, RESULT, {"row": b"x" * (MAX_FRAME + 1)})

    def test_unknown_message_type_is_an_error_not_a_hang(self, pair):
        a, b = pair
        bogus = 42
        assert bogus not in MESSAGE_NAMES
        a.sendall(struct.pack(">IB", 0, bogus))
        with pytest.raises(ProtocolError, match="unknown message type 42"):
            recv_message(b)

    def test_unknown_type_refused_on_send_too(self, pair):
        a, _b = pair
        with pytest.raises(ProtocolError, match="unknown"):
            send_message(a, 0, None)

    def test_undecodable_payload_raises(self, pair):
        a, b = pair
        garbage = b"this is not a pickle"
        a.sendall(struct.pack(">IB", len(garbage), RESULT) + garbage)
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_message(b)


class TestFraming:
    def test_partial_delivery_is_reassembled(self, pair):
        """A frame arriving one byte at a time still decodes (TCP is a
        byte stream; the receiver must loop, not assume one recv)."""
        a, b = pair
        frame_payload = {"job_id": 3, "row": {"k": "v" * 100}}
        done = threading.Event()

        def dribble():
            import pickle
            body = pickle.dumps(frame_payload)
            frame = struct.pack(">IB", len(body), RESULT) + body
            for i in range(len(frame)):
                a.sendall(frame[i:i + 1])
            done.set()

        t = threading.Thread(target=dribble)
        t.start()
        mtype, payload = recv_message(b)
        t.join(timeout=10)
        assert done.is_set()
        assert mtype == RESULT and payload == frame_payload
