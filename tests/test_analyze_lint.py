"""Tests for the kernel-variant lint (partition, double-buffer, AST)."""

from repro.analyze.lint import (
    lint_variant,
    partition_findings,
    static_findings,
)
from repro.core.kernel import Kernel, get_kernel
from repro.trace.events import Trace, TraceEvent, TraceMeta


def region_trace(tiles, dim=32, rmode="par"):
    """A synthetic one-region trace with the given (x, y, w, h) tiles."""
    events = [
        TraceEvent(
            iteration=1, cpu=0, start=float(i), end=i + 0.5,
            x=x, y=y, w=w, h=h,
            extra={"index": i, "region": 0, "rmode": rmode},
        )
        for i, (x, y, w, h) in enumerate(tiles)
    ]
    return Trace(TraceMeta(kernel="k", variant="v", dim=dim), events)


class TestPartitionChecks:
    def test_full_partition_is_clean(self):
        tiles = [(x, y, 16, 16) for y in (0, 16) for x in (0, 16)]
        assert partition_findings(region_trace(tiles)) == []

    def test_overlap_is_error_naming_both_tasks(self):
        tiles = [(0, 0, 16, 32), (16, 0, 16, 32), (8, 0, 16, 32)]
        findings = partition_findings(region_trace(tiles))
        assert [f.level for f in findings] == ["error"]
        assert findings[0].check == "partition-overlap"
        assert "task #0" in findings[0].message
        assert "task #2" in findings[0].message
        assert "pixel (x=8, y=0)" in findings[0].message

    def test_gap_is_warning(self):
        tiles = [(0, 0, 16, 32), (16, 0, 16, 16)]  # bottom-right missing
        findings = partition_findings(region_trace(tiles))
        assert [f.level for f in findings] == ["warning"]
        assert findings[0].check == "partition-gap"
        assert "pixel (x=16, y=16)" in findings[0].message

    def test_lazy_suppresses_gap_not_overlap(self):
        gap = [(0, 0, 16, 32)]
        assert partition_findings(region_trace(gap), lazy=True) == []
        overlap = [(0, 0, 16, 32), (8, 0, 16, 32)]
        assert len(partition_findings(region_trace(overlap), lazy=True)) == 1

    def test_non_tile_regions_skipped(self):
        t = region_trace([(0, 0, 16, 32)])
        for e in t.events:
            object.__setattr__(e, "x", -1)
            object.__setattr__(e, "y", -1)
        assert partition_findings(t) == []


class TestSharedAccumulatorAst:
    def test_parallel_for_nonlocal_flagged(self):
        class BadKernel(Kernel):
            name = "bad-acc"

            def compute_omp(self, ctx, nb_iter):
                total = 0

                def body(t):
                    nonlocal total
                    total += t.area
                    return t.area

                ctx.parallel_for(body)
                return 0

            compute_omp._variant_name = "omp"

        findings = static_findings(BadKernel(), "omp")
        assert [f.check for f in findings] == ["shared-accumulator"] * len(findings)
        assert findings
        assert "parallel_reduce" in findings[0].message

    def test_augassign_on_free_name_flagged(self):
        class BadKernel2(Kernel):
            name = "bad-acc2"

            def compute_omp(self, ctx, nb_iter):
                ctx.parallel_for(lambda t: acc.__iadd__(1))  # noqa: F821
                best = [0]

                def body(t):
                    best += [t]  # AugAssign on captured name
                    return 0.0

                ctx.parallel_for(body)
                return 0

            compute_omp._variant_name = "omp"

        findings = static_findings(BadKernel2(), "omp")
        assert any("best" in f.message for f in findings)

    def test_body_local_accumulator_not_flagged(self):
        class GoodKernel(Kernel):
            name = "good-acc"

            def compute_omp(self, ctx, nb_iter):
                def body(t):
                    acc = 0
                    for v in range(4):
                        acc += v  # local: bound by assignment above
                    return float(acc)

                ctx.parallel_for(body)
                return 0

            compute_omp._variant_name = "omp"

        assert static_findings(GoodKernel(), "omp") == []

    def test_parallel_reduce_mutation_message(self):
        class BadReduce(Kernel):
            name = "bad-reduce"

            def compute_omp(self, ctx, nb_iter):
                state = 0

                def body(t):
                    nonlocal state
                    state += 1
                    return state

                ctx.parallel_reduce(body, list(ctx.grid), 0.0, max)
                return 0

            compute_omp._variant_name = "omp"

        findings = static_findings(BadReduce(), "omp")
        assert findings
        assert "must" in findings[0].message and "return" in findings[0].message

    def test_builtin_variants_pass_static_lint(self):
        for name in ("mandel", "blur", "life", "spin", "heat"):
            kernel = get_kernel(name)
            for v in kernel.variant_names():
                assert static_findings(kernel, v) == [], (name, v)


class TestLintVariantDriver:
    def test_clean_builtin(self):
        result = lint_variant("mandel", "omp_tiled")
        assert result.clean
        assert "ok" in result.describe()

    def test_mpi_variant_lints_every_rank(self):
        result = lint_variant("blur", "mpi_omp", mpi_np=2)
        assert result.clean
        assert len(result.race_results) == 2  # one trace per rank

    def test_lazy_variant_no_gap_warnings(self):
        result = lint_variant("life", "lazy", iterations=4)
        assert result.warnings == []
