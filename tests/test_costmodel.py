"""Tests for the cost model."""

import pytest

from repro.sched.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    measured_costs,
    uniform_costs,
)


class TestCostModel:
    def test_time_of(self):
        m = CostModel(seconds_per_unit=2.0)
        assert m.time_of(3.0) == 6.0

    def test_times_of(self):
        m = CostModel(seconds_per_unit=0.5)
        assert m.times_of([2, 4]) == [1.0, 2.0]

    def test_scaled_multiplies_everything(self):
        m = CostModel(1.0, 0.1, 0.2, 0.3).scaled(10.0)
        assert m.seconds_per_unit == pytest.approx(10.0)
        assert m.dispatch_overhead == pytest.approx(1.0)
        assert m.steal_overhead == pytest.approx(2.0)
        assert m.fork_join_overhead == pytest.approx(3.0)

    def test_zero_overhead_keeps_unit(self):
        m = CostModel(2.0, 0.1, 0.2, 0.3).zero_overhead()
        assert m.seconds_per_unit == 2.0
        assert m.dispatch_overhead == 0.0
        assert m.steal_overhead == 0.0
        assert m.fork_join_overhead == 0.0

    def test_default_overheads_are_small_vs_tiles(self):
        # a 16x16 mandel tile at ~100 iters/pixel dominates dispatch cost
        tile_work = 16 * 16 * 100
        m = DEFAULT_COST_MODEL
        assert m.time_of(tile_work) > 20 * m.dispatch_overhead

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.seconds_per_unit = 1.0  # type: ignore[misc]


class TestHelpers:
    def test_uniform_costs(self):
        assert uniform_costs(3, 2.5) == [2.5, 2.5, 2.5]
        assert uniform_costs(0) == []

    def test_measured_costs(self):
        m = CostModel(seconds_per_unit=2.0)
        assert measured_costs([1.0, 3.0], m) == [2.0, 6.0]
