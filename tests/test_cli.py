"""Tests for the easypap CLI."""


from repro.cli import config_from_args, main, parse_args


def parse(argv, env=None):
    return config_from_args(parse_args(argv), env=env or {})


class TestConfigFromArgs:
    def test_paper_invocation_seq(self):
        cfg = parse(["--kernel", "mandel", "--variant", "seq", "--size", "2048"])
        assert cfg.kernel == "mandel" and cfg.variant == "seq" and cfg.dim == 2048

    def test_paper_invocation_perf_mode(self):
        cfg = parse(["--kernel", "mandel", "--variant", "omp_tiled",
                     "--tile-size", "16", "--iterations", "50", "--no-display"])
        assert cfg.tile_w == cfg.tile_h == 16
        assert cfg.iterations == 50
        assert not cfg.display

    def test_grain_alias(self):
        cfg = parse(["--grain", "32"])
        assert cfg.tile_w == 32

    def test_rectangular_tiles(self):
        cfg = parse(["-tw", "32", "-th", "8"])
        assert (cfg.tile_w, cfg.tile_h) == (32, 8)

    def test_tile_default_clipped_to_small_images(self):
        cfg = parse(["--size", "16"])
        assert cfg.tile_w == 16

    def test_mpirun(self):
        cfg = parse(["--kernel", "life", "--variant", "mpi_omp",
                     "--mpirun", "-np 2", "--debug", "M"])
        assert cfg.mpi_np == 2 and cfg.debug == "M"

    def test_icvs_from_env(self):
        cfg = parse(["--kernel", "mandel"],
                    env={"OMP_NUM_THREADS": "6", "OMP_SCHEDULE": "guided"})
        assert cfg.nthreads == 6 and cfg.schedule == "guided"

    def test_flags_override_env(self):
        cfg = parse(["--nb-threads", "2", "--schedule", "static,4"],
                    env={"OMP_NUM_THREADS": "6", "OMP_SCHEDULE": "guided"})
        assert cfg.nthreads == 2 and cfg.schedule == "static,4"


class TestMain:
    def test_performance_mode_output(self, capsys):
        rc = main(["--kernel", "mandel", "--variant", "omp_tiled", "--size",
                   "64", "--tile-size", "16", "--iterations", "3",
                   "--no-display"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3 iterations completed in" in out

    def test_list_kernels(self, capsys):
        assert main(["--list-kernels"]) == 0
        assert "mandel" in capsys.readouterr().out

    def test_list_variants(self, capsys):
        assert main(["--kernel", "blur", "--list-variants"]) == 0
        assert "omp_tiled_opt" in capsys.readouterr().out

    def test_monitoring_prints_windows(self, capsys):
        rc = main(["--kernel", "mandel", "--variant", "omp_tiled", "--size",
                   "64", "--tile-size", "16", "--iterations", "2",
                   "--monitoring"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Tiling window" in out
        assert "Activity Monitor" in out
        assert "cumulated idleness" in out

    def test_trace_written(self, tmp_path, capsys):
        trace_file = tmp_path / "t.evt"
        rc = main(["--kernel", "mandel", "--variant", "omp_tiled", "--size",
                   "64", "--iterations", "2", "--trace", "--trace-file",
                   str(trace_file)])
        assert rc == 0
        assert trace_file.exists()
        from repro.trace.format import load_trace

        assert len(load_trace(trace_file)) > 0

    def test_dump_image(self, tmp_path, capsys):
        rc = main(["--kernel", "invert", "--variant", "seq", "--size", "32",
                   "--iterations", "1", "--dump", "--output-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "invert.ppm").exists()

    def test_display_dumps_frames(self, tmp_path):
        rc = main(["--kernel", "life", "--variant", "seq", "--size", "32",
                   "--tile-size", "16", "--iterations", "3", "--arg", "gun",
                   "--display", "--output-dir", str(tmp_path)])
        assert rc == 0
        frames = sorted(tmp_path.glob("life-*.ppm"))
        assert len(frames) == 3

    def test_csv_row_appended(self, tmp_path):
        csv = tmp_path / "perf.csv"
        main(["--kernel", "mandel", "--variant", "omp_tiled", "--size", "64",
              "--iterations", "1", "--csv", str(csv)])
        from repro.expt.csvdb import read_rows

        rows = read_rows(csv)
        assert len(rows) == 1
        assert rows[0]["kernel"] == "mandel" and rows[0]["time_us"] > 0

    def test_early_stop_reported(self, capsys):
        rc = main(["--kernel", "sandpile", "--variant", "seq", "--size", "16",
                   "--tile-size", "8", "--iterations", "500"])
        assert rc == 0
        assert "stabilized at iteration" in capsys.readouterr().out

    def test_unknown_kernel_is_clean_error(self, capsys):
        rc = main(["--kernel", "bogus", "--iterations", "1"])
        assert rc == 1
        assert "easypap:" in capsys.readouterr().err

    def test_bad_config_is_usage_error(self, capsys):
        rc = main(["--kernel", "mandel", "--size", "8", "--tile-size", "64"])
        assert rc == 2
        assert "easypap:" in capsys.readouterr().err

    def test_mpi_run_via_cli(self, capsys):
        rc = main(["--kernel", "life", "--variant", "mpi_omp", "--size", "64",
                   "--tile-size", "16", "--iterations", "3", "--arg", "gun",
                   "--mpirun", "-np 2"])
        assert rc == 0
        assert "iterations completed" in capsys.readouterr().out
