"""Tests for the rendering layer: ASCII windows, SVG, PPM, colors."""

import numpy as np
import pytest

from repro.core.image import rgb
from repro.errors import ConfigError
from repro.monitor.records import IterationRecord
from repro.view.ascii import (
    render_activity,
    render_heatmap,
    render_idleness_history,
    render_tiling,
)
from repro.view.colors import cpu_color, cpu_palette, heat_color, heat_image
from repro.view.ppm import load_ppm, packed_to_rgb, save_pgm, save_ppm
from repro.view.svg import SvgCanvas
from repro.view.thumbnail import heat_tile_image, thumbnail, tiling_image


class TestColors:
    def test_cpu_colors_distinct(self):
        pal = cpu_palette(8)
        assert len(set(pal)) == 8

    def test_uncomputed_is_dark(self):
        assert cpu_color(-1) == (40, 40, 40)

    def test_wraps(self):
        assert cpu_color(0) == cpu_color(16)

    def test_heat_ramp_monotone_brightness(self):
        lows = heat_color(0.1, 1.0)
        highs = heat_color(0.9, 1.0)
        assert sum(highs) > sum(lows)
        assert heat_color(5.0, 0.0) == (0, 0, 0)

    def test_heat_image_shape(self):
        img = heat_image(np.array([[0.0, 1.0]]))
        assert img.shape == (1, 2, 3)
        assert img.dtype == np.uint8
        assert img[0, 1].sum() > img[0, 0].sum()


class TestAscii:
    def test_tiling_glyphs(self):
        tiling = np.array([[0, 1], [-1, 2]])
        out = render_tiling(tiling)
        assert out.splitlines() == ["01", ".2"]

    def test_tiling_stolen_uppercase(self):
        tiling = np.array([[10, 10]])  # glyph 'a'
        stolen = np.array([[False, True]])
        assert render_tiling(tiling, stolen) == "aA"

    def test_heatmap_brightness(self):
        heat = np.array([[0.0, 0.5, 1.0]])
        out = render_heatmap(heat)
        assert len(out) == 3
        assert out[0] == " " and out[2] == "@"

    def test_heatmap_all_zero(self):
        assert set(render_heatmap(np.zeros((2, 2)))) <= {" ", "\n"}

    def test_activity_bars(self):
        rec = IterationRecord(iteration=3, span=2.0, busy=[2.0, 1.0],
                              tiling=np.zeros((1, 1)), heat=np.zeros((1, 1)),
                              stolen=np.zeros((1, 1), dtype=bool))
        out = render_activity(rec, width=10)
        assert "iteration 3" in out
        assert "CPU  0 [##########] 100.0%" in out
        assert "CPU  1 [#####-----]  50.0%" in out

    def test_idleness_history(self):
        out = render_idleness_history([0.1, 0.2, 0.4], width=10, height=4)
        assert "cumulated idleness" in out
        assert render_idleness_history([]) == "(no iterations recorded)"


class TestSvg:
    def test_structure(self):
        svg = SvgCanvas(100, 50)
        svg.rect(0, 0, 10, 10, fill="#ff0000")
        svg.line(0, 0, 5, 5)
        svg.text(1, 1, "héllo <world>")
        svg.circle(3, 3, 1, fill="#000")
        svg.polyline([(0, 0), (1, 1)], stroke="#00f")
        out = svg.tostring()
        assert out.startswith("<svg")
        assert out.rstrip().endswith("</svg>")
        assert "&lt;world&gt;" in out  # escaped
        assert "<circle" in out and "<polyline" in out

    def test_title_tooltip(self):
        svg = SvgCanvas(10, 10)
        svg.rect(0, 0, 1, 1, title="42 us")
        assert "<title>42 us</title>" in svg.tostring()

    def test_save(self, tmp_path):
        p = SvgCanvas(10, 10).save(tmp_path / "x" / "a.svg")
        assert p.exists()
        assert p.read_text().startswith("<svg")


class TestPpm:
    def test_packed_roundtrip(self, tmp_path):
        img = np.full((4, 6), rgb(10, 20, 30), dtype=np.uint32)
        p = save_ppm(img, tmp_path / "a.ppm")
        back = load_ppm(p)
        assert back.shape == (4, 6, 3)
        assert (back == [10, 20, 30]).all()

    def test_rgb_array_roundtrip(self, tmp_path):
        rgb_arr = np.random.default_rng(1).integers(0, 255, (5, 7, 3)).astype(np.uint8)
        back = load_ppm(save_ppm(rgb_arr, tmp_path / "b.ppm"))
        assert np.array_equal(back, rgb_arr)

    def test_bad_shape(self, tmp_path):
        with pytest.raises(ConfigError):
            save_ppm(np.zeros((2, 2, 4)), tmp_path / "c.ppm")

    def test_pgm(self, tmp_path):
        p = save_pgm(np.array([[0.0, 1.0], [0.5, 0.25]]), tmp_path / "g.pgm")
        data = p.read_bytes()
        assert data.startswith(b"P5")
        assert data[-4:] == bytes([0, 255, 127, 63])

    def test_load_rejects_non_ppm(self, tmp_path):
        p = tmp_path / "x.ppm"
        p.write_bytes(b"GIF89a")
        with pytest.raises(ConfigError):
            load_ppm(p)

    def test_packed_to_rgb(self):
        arr = np.array([[rgb(1, 2, 3)]], dtype=np.uint32)
        assert packed_to_rgb(arr).tolist() == [[[1, 2, 3]]]


class TestThumbnails:
    def test_thumbnail_downsamples(self):
        img = np.zeros((256, 256), dtype=np.uint32)
        th = thumbnail(img, max_side=64)
        assert max(th.shape[:2]) <= 64
        assert th.shape[2] == 3

    def test_thumbnail_small_image_unchanged_size(self):
        img = np.zeros((16, 16), dtype=np.uint32)
        th = thumbnail(img, max_side=64)
        assert th.shape[:2] == (16, 16)

    def test_tiling_image_colors(self):
        tiling = np.array([[0, -1]])
        img = tiling_image(tiling, cell=4)
        assert img.shape == (4, 8, 3)
        assert tuple(img[0, 0]) == cpu_color(0)
        assert tuple(img[0, 7]) == cpu_color(-1)

    def test_heat_tile_image(self):
        heat = np.array([[0.0, 1.0]])
        img = heat_tile_image(heat, cell=2)
        assert img.shape == (2, 4, 3)
        assert img[0, 3].sum() > img[0, 0].sum()
