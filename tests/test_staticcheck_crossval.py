"""Static-vs-dynamic footprint cross-validation.

The contract under test: every access the runtime actually performs
falls inside the statically inferred envelope — on fresh
footprint-carrying traces of several kernels, on every golden fixture
(vacuously: they carry no footprints), and a tampered trace must be
caught."""

from pathlib import Path

import pytest

from repro.cli import main as easypap_main
from repro.core.kernel import get_kernel
from repro.staticcheck import check_variant, cross_validate
from repro.trace.format import load_trace

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN = sorted(FIXTURES.glob("*.evt"))


def _record(tmp_path, kernel, variant, name):
    trace = tmp_path / f"{name}.evt"
    rc = easypap_main(
        ["-k", kernel, "-v", variant, "-s", "64", "-ts", "16", "-i", "2",
         "--check-races", "-t", "--trace-file", str(trace)]
    )
    assert rc == 0
    return load_trace(trace)


@pytest.mark.parametrize(
    "kernel,variant",
    [
        ("blur", "omp_tiled"),
        ("life", "omp_tiled"),
        ("mandel", "omp_tiled"),
        ("heat", "omp_tiled"),
        ("scrollup", "omp_tiled"),
        ("transpose", "omp_tiled"),
    ],
)
def test_fresh_trace_inside_static_envelope(tmp_path, kernel, variant, capsys):
    trace = _record(tmp_path, kernel, variant, kernel)
    vr = check_variant(get_kernel(kernel), variant)
    assert vr.verdict in ("clean", "unknown")
    cv = cross_validate(vr, trace)
    assert cv.ok, cv.describe()
    assert cv.events > 0
    assert cv.regions_checked > 0


@pytest.mark.parametrize("fixture", GOLDEN, ids=lambda p: p.stem)
def test_golden_fixtures_pass_vacuously(fixture):
    trace = load_trace(fixture)
    vr = check_variant(get_kernel(trace.meta.kernel), trace.meta.variant)
    cv = cross_validate(vr, trace)
    assert cv.ok
    # the golden traces predate footprints: the pass must be explicit
    # about its vacuity instead of claiming a validation that never ran
    assert cv.events == 0
    assert "vacuous" in cv.describe()


def test_tampered_trace_is_caught(tmp_path, capsys):
    trace_path = tmp_path / "blur.evt"
    rc = easypap_main(
        ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16", "-i", "2",
         "--check-races", "-t", "--trace-file", str(trace_path)]
    )
    assert rc == 0
    # rewrite one footprint: pretend a tile wrote 'cur' (the static
    # envelope only allows writes of 'next')
    text = trace_path.read_text(encoding="utf-8")
    tampered = text.replace('"writes": [["next"', '"writes": [["cur"', 1)
    assert tampered != text
    trace_path.write_text(tampered, encoding="utf-8")
    trace = load_trace(trace_path)
    vr = check_variant(get_kernel("blur"), "omp_tiled")
    cv = cross_validate(vr, trace)
    assert not cv.ok
    v = cv.violations[0]
    assert v.buf == "cur" and v.mode == "write"
    assert "outside the static envelope" in cv.describe()
    assert "FAILED" in cv.describe()


def test_out_of_halo_read_is_caught(tmp_path):
    trace_path = tmp_path / "blur2.evt"
    rc = easypap_main(
        ["-k", "blur", "-v", "omp_tiled", "-s", "64", "-ts", "16", "-i", "2",
         "--check-races", "-t", "--trace-file", str(trace_path)]
    )
    assert rc == 0
    # inflate one read to the whole image: far beyond the 1-pixel halo
    # of an interior tile
    text = trace_path.read_text(encoding="utf-8")
    needle = '"reads": [["cur", 15, 15, 18, 18]]'
    assert needle in text
    tampered = text.replace(needle, '"reads": [["cur", 0, 0, 64, 64]]', 1)
    trace_path.write_text(tampered, encoding="utf-8")
    trace = load_trace(trace_path)
    vr = check_variant(get_kernel("blur"), "omp_tiled")
    cv = cross_validate(vr, trace)
    assert not cv.ok
    assert cv.violations[0].mode == "read"
