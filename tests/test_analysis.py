"""Tests for the bottleneck-analysis module."""

import pytest

from repro.core.engine import run
from repro.trace.analysis import (
    analyze_iterations,
    bottleneck_report,
    critical_tasks,
    efficiency,
)
from repro.trace.events import Trace, TraceEvent, TraceMeta
from tests.conftest import make_config


def ev(it=1, cpu=0, start=0.0, end=1.0, **kw):
    return TraceEvent(iteration=it, cpu=cpu, start=start, end=end, **kw)


class TestAnalyzeIterations:
    def test_perfectly_balanced(self):
        t = Trace(TraceMeta(ncpus=2),
                  [ev(cpu=0, start=0, end=2), ev(cpu=1, start=0, end=2)])
        (a,) = analyze_iterations(t)
        assert a.span == 2.0
        assert a.busy == 4.0
        assert a.efficiency == pytest.approx(1.0)
        assert a.waste == pytest.approx(0.0)

    def test_half_idle(self):
        t = Trace(TraceMeta(ncpus=2), [ev(cpu=0, start=0, end=2)])
        (a,) = analyze_iterations(t)
        assert a.efficiency == pytest.approx(0.5)
        assert a.waste == pytest.approx(2.0)

    def test_iterations_separated(self):
        t = Trace(TraceMeta(ncpus=1),
                  [ev(it=1, start=0, end=1), ev(it=2, start=1, end=3)])
        parts = analyze_iterations(t)
        assert [p.iteration for p in parts] == [1, 2]
        assert parts[1].span == pytest.approx(2.0)

    def test_empty(self):
        assert analyze_iterations(Trace()) == []
        assert efficiency(Trace()) == 1.0
        assert bottleneck_report(Trace()) == "(empty trace)"


class TestEfficiencyOnRealRuns:
    def test_static_less_efficient_than_dynamic_on_mandel(self):
        cfg = dict(kernel="mandel", variant="omp_tiled", dim=128, tile_w=16,
                   tile_h=16, iterations=2, nthreads=4, trace=True)
        stat = run(make_config(schedule="static", **cfg))
        dyn = run(make_config(schedule="dynamic", **cfg))
        assert efficiency(stat.trace) < efficiency(dyn.trace)
        assert efficiency(dyn.trace) > 0.9

    def test_report_contents(self):
        r = run(make_config(kernel="mandel", variant="omp_tiled",
                            schedule="static", iterations=2, trace=True))
        report = bottleneck_report(r.trace)
        assert "parallel efficiency" in report
        assert "worst" in report
        assert "critical tasks" in report
        assert "tile(" in report


class TestCriticalTasks:
    def test_ordering_and_count(self):
        t = Trace(TraceMeta(ncpus=2), [
            ev(cpu=0, start=0, end=1, x=0, y=0, w=4, h=4),
            ev(cpu=1, start=0, end=5, x=4, y=0, w=4, h=4),
            ev(cpu=0, start=1, end=2, x=0, y=4, w=4, h=4),
        ])
        top = critical_tasks(t, 1, top=2)
        assert [e.end for e in top] == [5, 2]

    def test_cli_analysis_flag(self, tmp_path, capsys):
        from repro.cli import main as easypap_main
        from repro.easyview_cli import main as easyview_main

        evt = tmp_path / "t.evt"
        easypap_main(["--kernel", "mandel", "--variant", "omp_tiled",
                      "--size", "64", "--iterations", "2", "--trace",
                      "--trace-file", str(evt)])
        assert easyview_main([str(evt), "--analysis"]) == 0
        assert "bottleneck analysis" in capsys.readouterr().out
