"""Targeted tests for remaining corners of the public surface."""

import numpy as np
import pytest

from repro.core.context import ExecutionContext
from repro.core.engine import run
from repro.sched.costmodel import CostModel
from repro.trace.recorder import TraceRecorder
from tests.conftest import make_config

ZERO = CostModel(1.0, 0.0, 0.0, 0.0)


class TestTraceRecorderSections:
    def test_record_section(self):
        rec = TraceRecorder()
        rec.record_section(iteration=2, cpu=1, start=0.5, end=0.7, kind="ghost")
        trace = rec.to_trace()
        e = trace.events[0]
        assert e.kind == "ghost" and not e.has_tile
        assert e.duration == pytest.approx(0.2)

    def test_disabled_recorder_drops_everything(self):
        rec = TraceRecorder()
        rec.enabled = False
        rec.record_section(1, 0, 0.0, 1.0, "x")
        assert len(rec.to_trace()) == 0

    def test_clear(self):
        rec = TraceRecorder()
        rec.record_section(1, 0, 0.0, 1.0, "x")
        rec.clear()
        assert rec.events == []


class TestContextMisc:
    def test_advance_clock_rejects_negative(self):
        ctx = ExecutionContext(make_config(), model=ZERO)
        with pytest.raises(ValueError):
            ctx.advance_clock(-1.0)

    def test_image_macros(self):
        ctx = ExecutionContext(make_config(dim=16, tile_w=8, tile_h=8))
        assert ctx.DIM == 16 and ctx.TILE_W == 8 and ctx.TILE_H == 8
        ctx.set_cur(1, 2, 77)
        assert ctx.cur_img(1, 2) == 77
        ctx.set_next(3, 4, 88)
        assert ctx.next_img(3, 4) == 88
        ctx.swap_images()
        assert ctx.cur_img(3, 4) == 88

    def test_run_on_master_returns_value_and_charges_work(self):
        ctx = ExecutionContext(make_config(), model=ZERO)
        out = ctx.run_on_master(lambda: "hello", work=3.0)
        assert out == "hello"
        assert ctx.vclock == pytest.approx(3.0)

    def test_time_scale_scales_times(self):
        slow = run(make_config(kernel="mandel", variant="omp_tiled",
                               iterations=1, time_scale=10.0))
        fast = run(make_config(kernel="mandel", variant="omp_tiled",
                               iterations=1, time_scale=1.0))
        assert slow.virtual_time == pytest.approx(10.0 * fast.virtual_time)


class TestDisplayMode:
    def test_frame_hook_sees_refreshed_image(self):
        frames = []

        def hook(ctx, it):
            frames.append(ctx.img.copy_cur())

        run(make_config(kernel="invert", variant="seq", iterations=2),
            frame_hook=hook)
        assert len(frames) == 2
        assert not np.array_equal(frames[0], frames[1])


class TestExptoolsVerbose:
    def test_verbose_prints_progress(self, tmp_path, capsys):
        from repro.expt.exptools import execute

        execute(
            "easypap",
            {"OMP_NUM_THREADS=": [2]},
            {"--kernel ": ["none"], "--variant ": ["omp_tiled"],
             "--size ": [32], "--grain ": [16], "--iterations ": [1]},
            runs=1, csv_path=tmp_path / "x.csv", verbose=True,
        )
        out = capsys.readouterr().out
        assert "kernel=none" in out and "time=" in out


class TestMpiRefreshComposition:
    def test_life_display_composes_on_master_only(self):
        r = run(make_config(kernel="life", variant="mpi_omp", mpi_np=2,
                            dim=64, tile_w=16, tile_h=16, iterations=2,
                            arg="gun"))
        ref = run(make_config(kernel="life", variant="seq", dim=64,
                              tile_w=16, tile_h=16, iterations=2, arg="gun"))
        master, other = r.rank_results
        assert np.array_equal(master.image, ref.image)
        # the non-master rank never receives the other half
        top_half = other.image[:32]
        assert not np.array_equal(top_half, ref.image[:32])


class TestSimResultChunkLog:
    def test_grab_ordering_is_chronological(self):
        from repro.sched.policies import DynamicSchedule
        from repro.sched.simulator import simulate

        res = simulate([1.0] * 8, DynamicSchedule(2), 2, model=ZERO)
        times = [g.time for g in sorted(res.grabs, key=lambda g: (g.time, g.cpu))]
        assert times == sorted(times)
        assert sum(g.size for g in res.grabs) == 8
