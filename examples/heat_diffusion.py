#!/usr/bin/env python3
"""Heat diffusion: a numeric stencil from shared memory to MPI.

A follow-up to the blur assignment with everything turned up a notch:
floating-point Jacobi relaxation, a *reduction* for the convergence
test (the race-free OpenMP idiom), a 2D process grid with non-blocking
four-way halo exchange, and the monitoring dashboard as an SVG.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import RunConfig, run
from repro.view.ascii import render_heatmap
from repro.view.dashboard import dashboard_svg
from repro.view.ppm import save_pgm


def main() -> None:
    cfg = dict(kernel="heat", dim=32, tile_w=8, tile_h=8, iterations=5000,
               arg="corners")

    # --- shared memory: reduction-based convergence ------------------------
    seq = run(RunConfig(variant="seq", **cfg))
    par = run(RunConfig(variant="omp_tiled", nthreads=4, monitoring=True, **cfg))
    assert np.allclose(seq.context.data["temp"], par.context.data["temp"])
    print(f"sequential : converged at iteration {seq.early_stop}")
    print(f"omp_tiled  : converged at iteration {par.early_stop} "
          f"(speedup x{seq.elapsed / par.elapsed:.2f}; convergence test is a "
          "reduction(max) — no shared-state races)")

    print("\nper-tile cost map (uniform — unlike mandel, static would be fine):")
    print(render_heatmap(par.monitor.records[-1].heat))

    dash = dashboard_svg(par.monitor).save("dump/heat_dashboard.svg")
    print(f"monitoring dashboard: {dash}")

    # --- distributed: 2D blocks + non-blocking halo exchange -----------------
    mpi = run(RunConfig(variant="mpi_2d", mpi_np=4, nthreads=2, **cfg))
    master_temp = mpi.rank_results[0].context.data["temp"]
    assert np.allclose(seq.context.data["temp"], master_temp)
    print(f"\nmpi_2d     : converged at iteration {mpi.early_stop} on a 2x2 "
          "process grid (same iteration count: synchronous Jacobi)")
    for rank, rr in enumerate(mpi.rank_results):
        stats = rr.context.mpi.comm.stats
        print(f"  rank {rank}: {stats.messages_sent} msgs, "
              f"{stats.bytes_sent} bytes sent (4-way halo exchange)")

    path = save_pgm(master_temp, "dump/heat_field.pgm")
    print(f"\nfinal temperature field saved to {path}")


if __name__ == "__main__":
    main()
