#!/usr/bin/env python3
"""The picture-blurring assignment (paper §III-B): optimizing a stencil.

The story of Fig. 9b/10 end to end:

1. run the basic tiled blur (boundary conditionals in every tile);
2. run the optimized version (branch-free bulk code in inner tiles);
3. check the effectiveness with the heat-map mode — border tiles stay
   bright, inner tiles turn dark (Fig. 9b);
4. record both traces and compare them with EASYVIEW (Fig. 10):
   ~3x overall, ~10x on inner-tile tasks.

Run:  python examples/blur_stencil.py
"""

import numpy as np

from repro import RunConfig, run
from repro.trace.compare import TraceComparison
from repro.trace.format import save_trace
from repro.trace.gantt import GanttChart
from repro.view.ascii import render_heatmap

CFG = dict(kernel="blur", dim=256, tile_w=16, tile_h=16, iterations=3,
           nthreads=4, monitoring=True, trace=True, seed=3)


def main() -> None:
    basic = run(RunConfig(variant="omp_tiled", **CFG))
    opt = run(RunConfig(variant="omp_tiled_opt", **CFG))
    assert np.array_equal(basic.image, opt.image), "optimization changed pixels!"

    print("basic     :", basic.summary())
    print("optimized :", opt.summary())
    print(f"gain      : x{basic.elapsed / opt.elapsed:.2f} "
          "(paper: 'the new variant is 3 times faster!')")

    print("\nheat map, optimized version (Fig. 9b — bright = slow):")
    print(render_heatmap(opt.monitor.records[-1].heat))
    print("border tiles keep the conditional code; inner tiles vectorize.")

    print("\nEASYVIEW trace comparison (Fig. 10):")
    cmp_ = TraceComparison(basic.trace, opt.trace)
    print(cmp_.report())

    print("\nGantt, basic version (iteration 1):")
    print(GanttChart(basic.trace, 1, 1).to_ascii(width=72))
    print("\nGantt, optimized version (iteration 1):")
    print(GanttChart(opt.trace, 1, 1).to_ascii(width=72))

    save_trace(basic.trace, "dump/blur_basic.evt")
    save_trace(opt.trace, "dump/blur_opt.evt")
    print("\ntraces saved; explore them interactively with:")
    print("  easyview dump/blur_basic.evt dump/blur_opt.evt --svg dump/blur_cmp.svg")


if __name__ == "__main__":
    main()
