#!/usr/bin/env python3
"""Game of Life, putting it all together (paper §III-D, Fig. 13).

An efficient Life: its own compact cell array (the image is only
refreshed for display), lazy evaluation that skips steady tiles, and an
MPI + OpenMP distribution over row bands with ghost-row exchange —
including the tile-state metadata that keeps laziness working across
rank boundaries.

The script runs the paper's debugging-mode command equivalent::

    easypap --kernel life --variant mpi_omp --mpirun "-np 2" \
            --monitoring --debug M

and prints every process's monitoring windows: each rank owns half the
image and only tiles near the diagonals (where the gliders travel) are
computed.

Run:  python examples/life_mpi.py
"""

import numpy as np

from repro import RunConfig, run
from repro.view.ascii import render_tiling
from repro.view.ppm import save_ppm


def main() -> None:
    cfg = RunConfig(kernel="life", variant="mpi_omp", dim=256, tile_w=16,
                    tile_h=16, iterations=12, nthreads=4, arg="diag",
                    mpi_np=2, monitoring=True, debug="M")
    result = run(cfg)

    # sanity: the distributed run matches the sequential kernel
    ref = run(RunConfig(kernel="life", variant="seq", dim=256, tile_w=16,
                        tile_h=16, iterations=12, arg="diag"))
    assert np.array_equal(result.image, ref.image)
    print(result.summary(), f"on {cfg.mpi_np} ranks x {cfg.nthreads} threads")

    for rank, rr in enumerate(result.rank_results):
        rec = rr.monitor.records[-1]
        frac = rec.computed_fraction()
        stats = rr.context.mpi.comm.stats
        print(f"\n--- rank {rank} monitoring window "
              f"(computed {frac * 100:.0f}% of tiles; "
              f"{stats.messages_sent} msgs / {stats.bytes_sent} B sent) ---")
        print(render_tiling(rec.tiling))

    path = save_ppm(result.image, "dump/life_mpi.ppm")
    print(f"\ncomposed image saved to {path}")
    print("'.' tiles were skipped by lazy evaluation: only the areas the "
          "gliders traverse are ever computed.")


if __name__ == "__main__":
    main()
