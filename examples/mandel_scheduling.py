#!/usr/bin/env python3
"""The Mandelbrot assignment (paper §III-A): finding the right schedule.

Parallelizing mandel is trivial; making it *fast* is about load
balancing.  This script walks the full experimental loop a student
follows:

1. watch the tiling window under each OpenMP scheduling policy
   (paper Fig. 4);
2. quantify the load imbalance each policy leaves (paper Fig. 3);
3. run an expTools parameter sweep (paper Fig. 5) and plot speedup
   curves with easyplot (paper Fig. 6).

Run:  python examples/mandel_scheduling.py
"""

from repro import RunConfig, run
from repro.expt.easyplot import build_plot
from repro.expt.exptools import execute
from repro.expt.plotting import render_svg, render_text
from repro.view.ascii import render_tiling

SCHEDULES = ["static", "dynamic,2", "guided", "nonmonotonic:dynamic"]


def watch_tiling_windows() -> None:
    print("=" * 60)
    print("1. tiling windows per scheduling policy (Fig. 4)")
    print("=" * 60)
    for sched in SCHEDULES:
        r = run(RunConfig(kernel="mandel", variant="omp_tiled", dim=256,
                          tile_w=32, tile_h=32, iterations=1, nthreads=4,
                          schedule=sched, monitoring=True, arg="128"))
        rec = r.monitor.records[0]
        print(f"\n--- schedule({sched}) ---  (capitals = stolen tiles)")
        print(render_tiling(rec.tiling, rec.stolen))
        loads = ", ".join(f"{v:.0f}%" for v in rec.load_percent())
        print(f"per-CPU load: {loads}   imbalance: {r.monitor.load_imbalance():.2f}")


def sweep_and_plot() -> None:
    print()
    print("=" * 60)
    print("2. expTools sweep + easyplot speedup graphs (Figs. 5-6)")
    print("=" * 60)
    seq = run(RunConfig(kernel="mandel", variant="seq", dim=256,
                        iterations=5, arg="128"))
    csv = "dump/mandel_sweep.csv"
    execute(
        "easypap",
        {"OMP_NUM_THREADS=": [2, 4, 6, 8], "OMP_SCHEDULE=": SCHEDULES},
        {"--kernel ": ["mandel"], "--variant ": ["omp_tiled"],
         "--size ": [256], "--grain ": [16, 32], "--iterations ": [5],
         "--arg ": [128]},
        runs=3,
        csv_path=csv,
        reuse_work=True,  # capture tile costs once, replay per config
    )
    from repro.expt.csvdb import read_rows

    spec = build_plot(read_rows(csv), x="threads", col="tile_w", speedup=True,
                      ref_time_us=seq.elapsed * 1e6)
    print(render_text(spec))
    svg = render_svg(spec).save("dump/mandel_speedup.svg")
    print(f"\nspeedup figure written to {svg}")


if __name__ == "__main__":
    watch_tiling_windows()
    sweep_and_plot()
