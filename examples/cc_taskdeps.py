#!/usr/bin/env python3
"""The connected-components assignment (paper §III-C): task dependencies.

1. run the sequential algorithm (alternating down-right / up-left max
   propagation) until it stabilizes;
2. run the OpenMP-task version whose dependencies mirror Fig. 11 —
   a tile waits for its left and upper neighbours — and check it needs
   *no extra iterations*;
3. visualize the wave of tasks sweeping the image (Fig. 12);
4. reproduce the classic student bug: over-constrained dependencies
   serialize the whole phase.

Run:  python examples/cc_taskdeps.py
"""

import numpy as np

from repro import RunConfig, run
from repro.core.context import ExecutionContext
from repro.trace.gantt import GanttChart

CFG = dict(kernel="cc", dim=128, tile_w=16, tile_h=16, iterations=64, seed=4,
           nthreads=8)


def main() -> None:
    seq = run(RunConfig(variant="seq", **CFG))
    task = run(RunConfig(variant="omp_task", trace=True, **CFG))
    assert np.array_equal(seq.image, task.image)
    labels = len(set(task.image[task.image != 0].tolist()))
    print(f"sequential : converged at iteration {seq.early_stop}, "
          f"{labels} components")
    print(f"omp_task   : converged at iteration {task.early_stop} "
          "(same — correct dependencies add no iterations)")
    print(f"speedup    : x{seq.elapsed / task.elapsed:.2f} on 8 virtual CPUs")

    print("\nthe wave of tasks (Fig. 12), down-right phase of iteration 1:")
    events = [e for e in task.trace.events
              if e.kind == "task_dr" and e.iteration == 1]
    waves: dict[int, int] = {}
    for e in events:
        waves[e.y // 16 + e.x // 16] = waves.get(e.y // 16 + e.x // 16, 0) + 1
    for d in sorted(waves):
        print(f"  anti-diagonal {d:2d}: {'#' * waves[d]}")
    print("\nGantt chart of the first iteration:")
    print(GanttChart(task.trace, 1, 1).to_ascii(width=72))

    # --- the student bug ----------------------------------------------------
    print("\nover-constraining the problem (every task depends on the "
          "previous one):")
    ctx = ExecutionContext(RunConfig(kernel="none", variant="seq", dim=128,
                                     tile_w=16, tile_h=16, nthreads=8))
    with ctx.task_region() as tr:
        prev_token = None
        for t in ctx.grid:
            reads = [prev_token] if prev_token else []
            tr.task(lambda: 100.0, item=t, reads=reads,
                    writes=[(t.row, t.col)])
            prev_token = (t.row, t.col)
    tl = tr.timeline
    busy = [b for b in tl.busy_per_cpu() if b > 0]
    print(f"  {len(tl)} tasks, but only {len(busy)} CPU(s) ever worked — "
          "the Gantt shows one long serial lane (paper: 'they end up with "
          "a sequential execution of tasks').")


if __name__ == "__main__":
    main()
