"""Seeded-buggy example: a blur that writes ``cur`` instead of ``next``.

The kernel ``blur_buggy`` overrides the tiled blur body to blur each
tile *in place*: it reads the 3x3 halo from ``cur`` and writes the
result back into ``cur``, instead of into ``next`` followed by a swap.
Concurrent tiles of the same ``parallel_for`` then read boundary rows
that a neighbouring tile is overwriting — the classic double-buffer
bug of the stencil assignment.

``easypap --load examples/buggy_blur_writes_cur.py -k blur_buggy
--check-races`` reports the read-write races on ``cur`` plus a
``double-buffer`` lint finding telling the student to write into the
paired buffer and swap.
"""

from repro.core.kernel import register_kernel, variant
from repro.kernels.api import SCALAR_PIXEL_WORK, halo_region
from repro.kernels.blur import BlurKernel, blur_rect_vectorized


@register_kernel
class BuggyBlurKernel(BlurKernel):
    """Kernel ``blur_buggy``: tiled blur missing the double buffer."""

    name = "blur_buggy"

    def _do_tile_writes_cur(self, ctx, tile) -> float:
        x, y, w, h = tile.as_rect()
        ctx.declare_access(
            reads=[halo_region("cur", x, y, w, h, ctx.dim)],
            writes=[("cur", x, y, w, h)],  # BUG: should write "next"
        )
        blur_rect_vectorized(ctx.img.cur, ctx.img.cur, x, y, w, h)
        return tile.area * SCALAR_PIXEL_WORK

    @variant("omp_tiled")
    def compute_omp_tiled(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            ctx.parallel_for(ctx.body(self._do_tile_writes_cur))
            # no swap: the result was (incorrectly) written in place
        return 0


# Structured ground truth about the seeded bug, consumed by both the
# dynamic race sweep (``python -m repro.analyze --examples``) and the
# static-check CI matrix (``python -m repro.staticcheck ... --expect``).
# Keys are (kernel, variant); variants not listed here (the ones
# inherited unchanged from BlurKernel) must NOT be flagged.
EXPECTED_VERDICTS = {
    ("blur_buggy", "omp_tiled"): {
        "verdict": "race",
        "kind": "read-write",
        "buffer": "cur",
        "construct": "par",
        "lines": [29, 30],
        "advice": "double-buffer",
    },
}
