#!/usr/bin/env python3
"""Quickstart: run a kernel, parallelize it, look at the windows.

This is the first EASYPAP lab session in script form:

1. run the sequential Mandelbrot kernel;
2. run the tiled OpenMP variant and compare completion times;
3. open the monitoring windows (terminal renderings here) to see which
   thread computed which tile and how busy each CPU was;
4. dump the computed image as a PPM file.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, run
from repro.view.ascii import render_activity, render_tiling
from repro.view.ppm import save_ppm


def main() -> None:
    # --- 1. sequential reference -----------------------------------------
    seq = run(RunConfig(kernel="mandel", variant="seq", dim=256,
                        iterations=5, arg="128"))
    print("sequential :", seq.summary())

    # --- 2. the parallel tiled variant ------------------------------------
    par_cfg = RunConfig(kernel="mandel", variant="omp_tiled", dim=256,
                        tile_w=16, tile_h=16, iterations=5, nthreads=4,
                        schedule="dynamic", monitoring=True, arg="128")
    par = run(par_cfg)
    print("omp_tiled  :", par.summary())
    print(f"speedup    : x{par.speedup_vs(seq):.2f} on {par_cfg.nthreads} virtual CPUs")

    # --- 3. the monitoring windows ------------------------------------------
    rec = par.monitor.records[-1]
    print("\nTiling window (which thread computed which tile):")
    print(render_tiling(rec.tiling))
    print("\nActivity Monitor:")
    print(render_activity(rec))

    # --- 4. keep the picture ---------------------------------------------------
    path = save_ppm(par.image, "dump/quickstart_mandel.ppm")
    print(f"\nimage saved to {path}")


if __name__ == "__main__":
    main()
