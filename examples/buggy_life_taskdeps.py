"""Seeded-buggy example: a racy ``depend`` clause on a task-based Life.

The kernel ``life_buggy`` updates the cell grid *in place* with one
OpenMP task per tile.  In-place Life is only correct if every task is
ordered against all eight neighbouring tiles (each task reads a
one-cell halo around its tile).  This variant copies the depend clause
of the connected-components kernel — ``depend(in: left) depend(out:
self)`` — which orders a tile against its *left* neighbour only: the
tiles above and below run concurrently while their rows are being read.

``easypap --load examples/buggy_life_taskdeps.py -k life_buggy -v
omp_task --check-races`` reports the read-write races on ``cells`` and
names the missing in-dependence.

The bug is in the *ordering*, not the arithmetic: the variant still
runs to completion (producing wrong pixels on a real machine — here
the simulator executes tasks in submission order, so the race is
latent and only the analyzer sees it).
"""

from repro.core.kernel import register_kernel, variant
from repro.kernels.api import halo_region
from repro.kernels.life import CELL_WORK, LifeKernel, life_step_rect


@register_kernel
class BuggyLifeKernel(LifeKernel):
    """Kernel ``life_buggy``: in-place Life with an incomplete depend clause."""

    name = "life_buggy"

    def _do_tile_inplace(self, ctx, tile) -> float:
        ctx.declare_access(
            reads=[halo_region("cells", tile.x, tile.y, tile.w, tile.h, ctx.dim)],
            writes=[("cells", tile.x, tile.y, tile.w, tile.h)],
        )
        # reads the 3x3 halo of ``cells`` and writes the tile back into
        # ``cells`` — racy against any concurrent neighbour task
        changed = life_step_rect(
            ctx.data["cells"], ctx.data["cells"], tile.y, tile.x, tile.h, tile.w
        )
        ctx.data["changes"][tile.row, tile.col] = changed > 0
        return tile.area * CELL_WORK

    @variant("omp_task")
    def compute_omp_task(self, ctx, nb_iter: int) -> int:
        for it in ctx.iterations(nb_iter):
            self._begin_iter(ctx)
            with ctx.task_region() as tr:
                for t in ctx.grid:
                    tr.task(
                        lambda t=t: self._do_tile_inplace(ctx, t),
                        item=t,
                        # BUG: orders against the left neighbour only;
                        # the up/down/diagonal neighbours — whose rows
                        # this tile reads — are left concurrent
                        reads=[(t.row, t.col - 1)],
                        writes=[(t.row, t.col)],
                    )
            stable = not ctx.run_on_master(lambda: bool(ctx.data["changes"].any()))
            if stable:
                return it
        return 0


# Structured ground truth about the seeded bug, consumed by both the
# dynamic race sweep (``python -m repro.analyze --examples``) and the
# static-check CI matrix (``python -m repro.staticcheck ... --expect``).
# Keys are (kernel, variant); variants not listed here (the ones
# inherited unchanged from LifeKernel) must NOT be flagged.
EXPECTED_VERDICTS = {
    ("life_buggy", "omp_task"): {
        "verdict": "race",
        "kind": "read-write",
        "buffer": "cells",
        "construct": "dag",
        "lines": [33, 34],
        "advice": "missing ordering edge",
    },
}
