"""Seeded-buggy example: a wavefront sweep missing half its ordering.

The kernel ``wavefront_buggy`` relaxes the heat field *in place*
(Gauss-Seidel style): each tile reads the already-updated values of its
left and upper neighbours through its one-cell halo.  That sweep is the
textbook tile-grid wavefront — correct only when every task is ordered
after both the tile to its left *and* the tile above it, so the ready
frontier advances along anti-diagonals.

This variant declares the left in-dependence and forgets the upper one:
rows race ahead of each other, and a tile's halo rows are read while
the tile above is still writing them.

``easypap --load examples/buggy_wavefront_deps.py -k wavefront_buggy
-v omp_taskdep --check-races`` reports the read-write races on
``temp``; ``python -m repro.staticcheck examples/buggy_wavefront_deps.py
--expect`` proves the same missing edge without running the DAG (the
dependence cone of ``(0, -1)`` never covers grid offset ``(-1, 0)``).

The bug is in the *ordering*, not the arithmetic: the simulator runs
tasks in submission order, so the race stays latent until an analyzer
looks.
"""

from repro.core.kernel import register_kernel, variant
from repro.kernels.api import halo_region
from repro.kernels.heat import CELL_WORK, HeatKernel, jacobi_step_rect


@register_kernel
class BuggyWavefrontKernel(HeatKernel):
    """Kernel ``wavefront_buggy``: in-place sweep with a dropped edge."""

    name = "wavefront_buggy"

    def _do_tile_inplace(self, ctx, tile) -> float:
        ctx.declare_access(
            reads=[
                halo_region("temp", tile.x, tile.y, tile.w, tile.h, ctx.dim),
                ("sources", tile.x, tile.y, tile.w, tile.h),
            ],
            writes=[("temp", tile.x, tile.y, tile.w, tile.h)],
        )
        # reads the 3x3 halo of ``temp`` and writes the tile back into
        # ``temp`` — racy against any concurrent neighbour task
        jacobi_step_rect(
            ctx.data["temp"], ctx.data["temp"], ctx.data["sources"],
            tile.y, tile.x, tile.h, tile.w,
        )
        return tile.area * CELL_WORK

    @variant("omp_taskdep")
    def compute_omp_taskdep(self, ctx, nb_iter: int) -> int:
        for _ in ctx.iterations(nb_iter):
            with ctx.task_region() as tr:
                for t in ctx.grid:
                    tr.task(
                        lambda t=t: self._do_tile_inplace(ctx, t),
                        item=t,
                        # BUG: a wavefront needs BOTH the left and the
                        # upper in-dependence; only the left one is
                        # declared, so vertically adjacent tiles run
                        # concurrently while their halo rows are read
                        reads=[(t.row, t.col - 1)],
                        writes=[(t.row, t.col)],
                    )
        return 0


# Structured ground truth about the seeded bug, consumed by both the
# dynamic race sweep (``python -m repro.analyze --load ...``) and the
# static-check CI matrix (``python -m repro.staticcheck ... --expect``).
# Keys are (kernel, variant); variants not listed here (the ones
# inherited unchanged from HeatKernel) must NOT be flagged.
EXPECTED_VERDICTS = {
    ("wavefront_buggy", "omp_taskdep"): {
        "verdict": "race",
        "kind": "read-write",
        "buffer": "temp",
        "construct": "dag",
        "lines": [37, 39],
        "advice": "missing ordering edge",
    },
}
